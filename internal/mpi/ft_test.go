package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// runWithTimeout runs the world and fails the test if it does not complete
// within the deadline — the way a hang in a failure path is detected.
func runWithTimeout(t *testing.T, w *World, d time.Duration, main func(p *Proc) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- w.Run(main) }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("world.Run did not complete within %v (hang in failure path)", d)
		return nil
	}
}

func isFailedErr(err error) bool {
	var pf *ProcessFailedError
	return errors.As(err, &pf)
}

func TestRevokeAbortsBlockedReceive(t *testing.T) {
	w := newTestWorld(t, 3)
	var mu sync.Mutex
	got := map[int]error{}
	err := runWithTimeout(t, w, 10*time.Second, func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 0:
			// Give rank 1 a moment to block, then revoke.
			time.Sleep(10 * time.Millisecond)
			comm.Revoke()
			comm.Revoke() // idempotent
		case 1:
			err := Catch(func() { comm.Recv(2, 7) }) // rank 2 never sends
			mu.Lock()
			got[1] = err
			mu.Unlock()
		case 2:
			// Returns without sending; must not hang on anything.
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var rv *RevokedError
	if !errors.As(got[1], &rv) {
		t.Fatalf("blocked receive on revoked comm returned %v, want *RevokedError", got[1])
	}
}

func TestRevokedCommRejectsNewOperations(t *testing.T) {
	w := newTestWorld(t, 2)
	err := runWithTimeout(t, w, 10*time.Second, func(p *Proc) error {
		comm := p.CommWorld()
		comm.Revoke()
		if !comm.Revoked() {
			return fmt.Errorf("Revoked() = false after Revoke")
		}
		if err := Catch(func() { comm.Send(1-p.Rank(), 0, []byte{1}) }); err == nil {
			return fmt.Errorf("Send on revoked comm succeeded")
		} else if _, ok := err.(*RevokedError); !ok {
			return fmt.Errorf("Send on revoked comm returned %v, want *RevokedError", err)
		}
		if err := Catch(func() { comm.Recv(1-p.Rank(), 0) }); err == nil {
			return fmt.Errorf("Recv on revoked comm succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAgreeFailedConverges(t *testing.T) {
	w := newTestWorld(t, 4)
	w.Fail(3)
	var mu sync.Mutex
	views := map[int][]int{}
	err := runWithTimeout(t, w, 10*time.Second, func(p *Proc) error {
		if p.Rank() == 3 {
			return nil
		}
		failed := p.CommWorld().AgreeFailed()
		mu.Lock()
		views[p.Rank()] = failed
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if !reflect.DeepEqual(views[r], []int{3}) {
			t.Fatalf("rank %d agreed on %v, want [3]", r, views[r])
		}
	}
}

func TestAgreeFailedDuringAgreement(t *testing.T) {
	// Rank 3 dies instead of entering the agreement: the survivors must
	// still converge, on identical sets that include rank 3.
	w := newTestWorld(t, 4)
	var mu sync.Mutex
	views := map[int][]int{}
	err := runWithTimeout(t, w, 10*time.Second, func(p *Proc) error {
		if p.Rank() == 3 {
			time.Sleep(10 * time.Millisecond) // let survivors block first
			w.Fail(3)
			return nil
		}
		failed := p.CommWorld().AgreeFailed()
		mu.Lock()
		views[p.Rank()] = failed
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := views[0]
	if len(want) == 0 || want[len(want)-1] != 3 {
		t.Fatalf("agreement %v does not include failed rank 3", want)
	}
	for r := 1; r < 3; r++ {
		if !reflect.DeepEqual(views[r], want) {
			t.Fatalf("rank %d agreed on %v, rank 0 on %v: no agreement", r, views[r], want)
		}
	}
}

func TestShrinkRestoresCollectives(t *testing.T) {
	w := newTestWorld(t, 4)
	w.Fail(2)
	err := runWithTimeout(t, w, 10*time.Second, func(p *Proc) error {
		if p.Rank() == 2 {
			return nil
		}
		comm := p.CommWorld()
		// The full communicator is broken: collectives abort.
		if err := Catch(func() { comm.Barrier() }); !isFailedErr(err) {
			return fmt.Errorf("rank %d: Barrier on broken comm returned %v, want *ProcessFailedError", p.Rank(), err)
		}
		sc := comm.Shrink()
		if sc.Size() != 3 {
			return fmt.Errorf("shrunk comm has %d members, want 3", sc.Size())
		}
		if wr := sc.WorldRankOf(sc.Rank()); wr != p.Rank() {
			return fmt.Errorf("rank mapping broken: world rank %d at shrunk rank %d", wr, sc.Rank())
		}
		// Full functionality is restored on the shrunk communicator.
		data := sc.Bcast(0, []byte{42})
		if len(data) != 1 || data[0] != 42 {
			return fmt.Errorf("Bcast over shrunk comm returned %v", data)
		}
		sum := sc.Allreduce([]byte{1}, func(inout, in []byte) { inout[0] += in[0] })
		if sum[0] != 3 {
			return fmt.Errorf("Allreduce over shrunk comm = %d, want 3", sum[0])
		}
		sc.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShrinkOnRevokedComm(t *testing.T) {
	// ULFM requires Shrink (and agreement) to work on revoked
	// communicators: that is how survivors escape.
	w := newTestWorld(t, 3)
	w.Fail(2)
	err := runWithTimeout(t, w, 10*time.Second, func(p *Proc) error {
		if p.Rank() == 2 {
			return nil
		}
		comm := p.CommWorld()
		comm.Revoke()
		sc := comm.Shrink()
		if sc.Size() != 2 {
			return fmt.Errorf("shrunk comm has %d members, want 2", sc.Size())
		}
		sc.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectivesAbortOnFailure checks the satellite requirement: a
// mid-operation failure must surface as a *ProcessFailedError on every
// survivor — no collective may hang. Rank n-1 dies concurrently with the
// survivors' collective; each survivor retries the collective until it
// observes the failure (the ULFM pattern — a collective is permitted to
// complete on members whose part of the tree never touches the corpse, so
// a single call need not fail everywhere, but a bounded retry loop must).
func TestCollectivesAbortOnFailure(t *testing.T) {
	op := func(inout, in []byte) {
		for i := range inout {
			inout[i] += in[i]
		}
	}
	cases := []struct {
		name string
		run  func(c *Comm)
	}{
		{"Barrier", func(c *Comm) { c.Barrier() }},
		{"Bcast", func(c *Comm) { c.Bcast(0, []byte{1, 2}) }},
		{"Reduce", func(c *Comm) { c.Reduce(0, []byte{1}, op) }},
		{"Allreduce", func(c *Comm) { c.Allreduce([]byte{1}, op) }},
		{"Gather", func(c *Comm) { c.Gather(0, []byte{byte(c.Rank())}) }},
		{"Scatter", func(c *Comm) {
			var parts [][]byte
			if c.Rank() == 0 {
				parts = make([][]byte, c.Size())
				for i := range parts {
					parts[i] = []byte{byte(i)}
				}
			}
			c.Scatter(0, parts)
		}},
		{"Allgather", func(c *Comm) { c.Allgather([]byte{byte(c.Rank())}) }},
		{"Alltoall", func(c *Comm) {
			parts := make([][]byte, c.Size())
			for i := range parts {
				parts[i] = []byte{byte(i)}
			}
			c.Alltoall(parts)
		}},
		{"Scan", func(c *Comm) { c.Scan([]byte{1}, op) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newTestWorld(t, 4)
			victim := 3
			var mu sync.Mutex
			errs := map[int]error{}
			err := runWithTimeout(t, w, 30*time.Second, func(p *Proc) error {
				comm := p.CommWorld()
				if p.Rank() == victim {
					// One clean round, then die mid-run.
					tc.run(comm)
					w.Fail(victim)
					return nil
				}
				// Every round races with the failure; retry until it is
				// observed. Every survivor must get there without
				// hanging.
				for {
					err := Catch(func() { tc.run(comm) })
					if err != nil {
						mu.Lock()
						errs[p.Rank()] = err
						mu.Unlock()
						return nil
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < victim; r++ {
				if !isFailedErr(errs[r]) {
					t.Fatalf("survivor %d: error = %v, want *ProcessFailedError", r, errs[r])
				}
			}
		})
	}
}

func TestCatchPassesUnrelatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Catch swallowed an unrelated panic")
		}
	}()
	Catch(func() { panic("boom") })
}

func TestWorldFailedRanks(t *testing.T) {
	w := newTestWorld(t, 5)
	w.Fail(3)
	w.Fail(1)
	w.Fail(3) // idempotent
	if got := w.FailedRanks(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("FailedRanks() = %v, want [1 3]", got)
	}
}
