package mpi

import (
	"fmt"
	"sort"
)

// Group is an ordered set of world ranks, the MPI group abstraction. Groups
// are immutable values; the constructors below mirror the MPI-1 group
// operations (which standard MPI provides and HMPI deliberately does not —
// HMPI's only group constructor is performance-model driven, but its
// substrate must still offer the full MPI set, and HMPI programs may obtain
// these groups through HMPI_Get_comm).
type Group struct {
	ranks []int // world ranks; index in the slice is the group rank
}

// NewGroup builds a group from world ranks. Ranks must be distinct.
func NewGroup(ranks []int) *Group {
	seen := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		if seen[r] {
			panic(fmt.Sprintf("mpi: duplicate rank %d in group", r))
		}
		seen[r] = true
	}
	return &Group{ranks: append([]int(nil), ranks...)}
}

// Size returns the number of processes in the group.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns a copy of the group's world ranks in group-rank order.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// WorldRank returns the world rank of the process with the given group
// rank.
func (g *Group) WorldRank(groupRank int) int { return g.ranks[groupRank] }

// Rank returns the group rank of the given world rank, or -1 if the world
// rank is not a member (MPI_UNDEFINED).
func (g *Group) Rank(worldRank int) int {
	for i, r := range g.ranks {
		if r == worldRank {
			return i
		}
	}
	return -1
}

// Contains reports whether the world rank is a member.
func (g *Group) Contains(worldRank int) bool { return g.Rank(worldRank) >= 0 }

// Translate maps ranks in g to the corresponding ranks in other
// (MPI_Group_translate_ranks); absent processes map to -1.
func (g *Group) Translate(ranks []int, other *Group) []int {
	out := make([]int, len(ranks))
	for i, r := range ranks {
		out[i] = other.Rank(g.WorldRank(r))
	}
	return out
}

// Union returns the group of processes in g followed by the processes of h
// not in g (MPI_Group_union ordering).
func (g *Group) Union(h *Group) *Group {
	out := append([]int(nil), g.ranks...)
	for _, r := range h.ranks {
		if !g.Contains(r) {
			out = append(out, r)
		}
	}
	return &Group{ranks: out}
}

// Intersection returns the processes of g that are also in h, in g's order
// (MPI_Group_intersection).
func (g *Group) Intersection(h *Group) *Group {
	var out []int
	for _, r := range g.ranks {
		if h.Contains(r) {
			out = append(out, r)
		}
	}
	return &Group{ranks: out}
}

// Difference returns the processes of g not in h, in g's order
// (MPI_Group_difference).
func (g *Group) Difference(h *Group) *Group {
	var out []int
	for _, r := range g.ranks {
		if !h.Contains(r) {
			out = append(out, r)
		}
	}
	return &Group{ranks: out}
}

// Incl returns the group containing the processes with the listed group
// ranks of g, in the listed order (MPI_Group_incl).
func (g *Group) Incl(groupRanks []int) *Group {
	out := make([]int, len(groupRanks))
	for i, r := range groupRanks {
		out[i] = g.ranks[r]
	}
	return NewGroup(out)
}

// Excl returns g without the processes with the listed group ranks
// (MPI_Group_excl).
func (g *Group) Excl(groupRanks []int) *Group {
	drop := make(map[int]bool, len(groupRanks))
	for _, r := range groupRanks {
		if r < 0 || r >= len(g.ranks) {
			panic(fmt.Sprintf("mpi: Excl rank %d out of range", r))
		}
		drop[r] = true
	}
	var out []int
	for i, r := range g.ranks {
		if !drop[i] {
			out = append(out, r)
		}
	}
	return &Group{ranks: out}
}

// RangeTriplet is one (first, last, stride) range of group ranks, as in
// MPI_Group_range_incl/excl. Stride may be negative; last is inclusive.
type RangeTriplet struct {
	First, Last, Stride int
}

func (t RangeTriplet) expand(size int) []int {
	if t.Stride == 0 {
		panic("mpi: zero stride in range triplet")
	}
	var out []int
	if t.Stride > 0 {
		for r := t.First; r <= t.Last; r += t.Stride {
			out = append(out, r)
		}
	} else {
		for r := t.First; r >= t.Last; r += t.Stride {
			out = append(out, r)
		}
	}
	for _, r := range out {
		if r < 0 || r >= size {
			panic(fmt.Sprintf("mpi: range rank %d out of range [0,%d)", r, size))
		}
	}
	return out
}

// RangeIncl returns the group of processes covered by the range triplets
// (MPI_Group_range_incl).
func (g *Group) RangeIncl(ranges []RangeTriplet) *Group {
	var sel []int
	for _, t := range ranges {
		sel = append(sel, t.expand(len(g.ranks))...)
	}
	return g.Incl(sel)
}

// RangeExcl returns g without the processes covered by the range triplets
// (MPI_Group_range_excl).
func (g *Group) RangeExcl(ranges []RangeTriplet) *Group {
	var sel []int
	for _, t := range ranges {
		sel = append(sel, t.expand(len(g.ranks))...)
	}
	return g.Excl(sel)
}

// Equal reports whether both groups contain the same processes in the same
// order (MPI_IDENT).
func (g *Group) Equal(h *Group) bool {
	if len(g.ranks) != len(h.ranks) {
		return false
	}
	for i := range g.ranks {
		if g.ranks[i] != h.ranks[i] {
			return false
		}
	}
	return true
}

// Similar reports whether both groups contain the same processes in any
// order (MPI_SIMILAR or MPI_IDENT).
func (g *Group) Similar(h *Group) bool {
	if len(g.ranks) != len(h.ranks) {
		return false
	}
	a := append([]int(nil), g.ranks...)
	b := append([]int(nil), h.ranks...)
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
