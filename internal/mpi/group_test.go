package mpi

import (
	"testing"
	"testing/quick"
)

func g(ranks ...int) *Group { return NewGroup(ranks) }

func TestGroupBasics(t *testing.T) {
	grp := g(3, 1, 4)
	if grp.Size() != 3 {
		t.Fatalf("size = %d", grp.Size())
	}
	if grp.WorldRank(0) != 3 || grp.WorldRank(2) != 4 {
		t.Fatal("WorldRank order wrong")
	}
	if grp.Rank(1) != 1 || grp.Rank(4) != 2 || grp.Rank(99) != -1 {
		t.Fatal("Rank lookup wrong")
	}
	if !grp.Contains(3) || grp.Contains(0) {
		t.Fatal("Contains wrong")
	}
}

func TestNewGroupRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ranks accepted")
		}
	}()
	NewGroup([]int{1, 2, 1})
}

func TestGroupSetOps(t *testing.T) {
	a := g(0, 1, 2, 3)
	b := g(2, 3, 4, 5)

	u := a.Union(b)
	if want := []int{0, 1, 2, 3, 4, 5}; !equalInts(u.Ranks(), want) {
		t.Errorf("Union = %v, want %v", u.Ranks(), want)
	}
	i := a.Intersection(b)
	if want := []int{2, 3}; !equalInts(i.Ranks(), want) {
		t.Errorf("Intersection = %v, want %v", i.Ranks(), want)
	}
	d := a.Difference(b)
	if want := []int{0, 1}; !equalInts(d.Ranks(), want) {
		t.Errorf("Difference = %v, want %v", d.Ranks(), want)
	}
	// MPI ordering: union keeps the first group's order first.
	u2 := b.Union(a)
	if want := []int{2, 3, 4, 5, 0, 1}; !equalInts(u2.Ranks(), want) {
		t.Errorf("Union order = %v, want %v", u2.Ranks(), want)
	}
}

func TestInclExcl(t *testing.T) {
	grp := g(10, 11, 12, 13, 14)
	in := grp.Incl([]int{4, 0, 2})
	if want := []int{14, 10, 12}; !equalInts(in.Ranks(), want) {
		t.Errorf("Incl = %v, want %v", in.Ranks(), want)
	}
	ex := grp.Excl([]int{1, 3})
	if want := []int{10, 12, 14}; !equalInts(ex.Ranks(), want) {
		t.Errorf("Excl = %v, want %v", ex.Ranks(), want)
	}
}

func TestRangeInclExcl(t *testing.T) {
	grp := g(0, 1, 2, 3, 4, 5, 6, 7)
	in := grp.RangeIncl([]RangeTriplet{{First: 0, Last: 6, Stride: 2}})
	if want := []int{0, 2, 4, 6}; !equalInts(in.Ranks(), want) {
		t.Errorf("RangeIncl = %v, want %v", in.Ranks(), want)
	}
	rev := grp.RangeIncl([]RangeTriplet{{First: 3, Last: 1, Stride: -1}})
	if want := []int{3, 2, 1}; !equalInts(rev.Ranks(), want) {
		t.Errorf("reverse RangeIncl = %v, want %v", rev.Ranks(), want)
	}
	ex := grp.RangeExcl([]RangeTriplet{{First: 0, Last: 7, Stride: 7}})
	if want := []int{1, 2, 3, 4, 5, 6}; !equalInts(ex.Ranks(), want) {
		t.Errorf("RangeExcl = %v, want %v", ex.Ranks(), want)
	}
}

func TestTranslate(t *testing.T) {
	a := g(5, 6, 7, 8)
	b := g(8, 5)
	got := a.Translate([]int{0, 1, 3}, b)
	if want := []int{1, -1, 0}; !equalInts(got, want) {
		t.Errorf("Translate = %v, want %v", got, want)
	}
}

func TestEqualSimilar(t *testing.T) {
	a := g(1, 2, 3)
	if !a.Equal(g(1, 2, 3)) || a.Equal(g(3, 2, 1)) || a.Equal(g(1, 2)) {
		t.Fatal("Equal wrong")
	}
	if !a.Similar(g(3, 2, 1)) || a.Similar(g(1, 2, 4)) {
		t.Fatal("Similar wrong")
	}
}

// Property tests for group algebra.

func toGroup(xs []uint8) *Group {
	seen := map[int]bool{}
	var ranks []int
	for _, x := range xs {
		r := int(x % 32)
		if !seen[r] {
			seen[r] = true
			ranks = append(ranks, r)
		}
	}
	return NewGroup(ranks)
}

func TestGroupAlgebraProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := toGroup(xs), toGroup(ys)
		u := a.Union(b)
		i := a.Intersection(b)
		d := a.Difference(b)
		// |A∪B| = |A| + |B| - |A∩B|
		if u.Size() != a.Size()+b.Size()-i.Size() {
			return false
		}
		// A\B and A∩B partition A.
		if d.Size()+i.Size() != a.Size() {
			return false
		}
		for _, r := range a.Ranks() {
			if i.Contains(r) == d.Contains(r) {
				return false
			}
			if !u.Contains(r) {
				return false
			}
		}
		for _, r := range b.Ranks() {
			if !u.Contains(r) {
				return false
			}
			if i.Contains(r) != a.Contains(r) {
				return false
			}
		}
		// Union is similar regardless of order.
		if !a.Union(b).Similar(b.Union(a)) {
			return false
		}
		// Intersection with self is identity.
		if !a.Intersection(a).Equal(a) {
			return false
		}
		// Difference with self is empty.
		if a.Difference(a).Size() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Incl/Rank round-trip — translating a group through itself is
// the identity.
func TestTranslateIdentityProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		a := toGroup(xs)
		if a.Size() == 0 {
			return true
		}
		ranks := make([]int, a.Size())
		for i := range ranks {
			ranks[i] = i
		}
		got := a.Translate(ranks, a)
		return equalInts(got, ranks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
