package mpi

// The hierarchy layer: node-level and net-level tier communicators
// derived from the placement, and the two-level collective algorithms
// that run on them (in the spirit of MPICH-G2's multilevel topology-aware
// collectives and of HMPI descendants that split every communicator into
// node/net tiers).
//
// Processes co-located on one machine form a node tier; the lowest
// communicator rank on each machine is the machine's leader, and the
// leaders form the net tier. Both tiers are derived purely locally: every
// rank knows the full placement and the member list, so the tier
// membership, ordering and context ids are computed without any
// communication, and the derivation is cached on the Comm handle. Derived
// communicators (Dup/Split/Create/Shrink/NewCommFromGroup) do not share
// the parent's cache — each recomputes its own tiers from its own member
// list on first use, so a communicator that Shrink dropped a machine from
// sees the machine disappear from its net tier.
//
// A two-level algorithm is worth running only when the communicator
// actually has two levels: it spans more than one machine AND some
// machine holds more than one member. Node tiers (one machine) and net
// tiers (one member per machine) are never viable, which terminates the
// recursion structurally — a tier communicator asked for a hierarchical
// algorithm falls back to the flat size-aware resolution.

// Reserved allocContext sequence numbers for the tier communicators.
// nextContext's deriveSeq counts 1, 2, ... upward, so negative constants
// can never collide with it — important because the hierarchy is derived
// lazily at different times on different ranks and must not touch the
// collective constructors' agreed counters. The node tier reserves one
// base id and offsets it by the machine-group index (same trick as
// Split's per-color offset, and far below contextStride).
const (
	hierSeqNode int64 = -1
	hierSeqNet  int64 = -2
)

// hierInfo is the cached hierarchy of one communicator handle.
type hierInfo struct {
	// groups lists the communicator ranks on each distinct machine, in
	// ascending rank order; groups are ordered by their leader's rank
	// (the machine's lowest communicator rank). groups[g][0] is group
	// g's leader.
	groups  [][]int
	groupOf []int // communicator rank -> group index
	node    *Comm // this rank's node tier (always non-nil)
	net     *Comm // the leaders' net tier; nil on non-leaders
	viable  bool  // >1 machine and some machine holds >1 rank
}

// hier derives (or returns the cached) hierarchy of the communicator.
// Pure local: no communication, no clock movement.
func (c *Comm) hier() *hierInfo {
	if c.hi != nil {
		return c.hi
	}
	if c.rank < 0 || len(c.s.members) == 0 {
		panic("mpi: hierarchy of a freed communicator")
	}
	w := c.p.world
	n := len(c.s.members)
	h := &hierInfo{groupOf: make([]int, n)}
	byMachine := make(map[int]int) // machine index -> group index
	maxNode := 0
	for r, worldRank := range c.s.members {
		m := w.place[worldRank]
		g, ok := byMachine[m]
		if !ok {
			g = len(h.groups)
			byMachine[m] = g
			h.groups = append(h.groups, nil)
		}
		h.groups[g] = append(h.groups[g], r)
		h.groupOf[r] = g
		if len(h.groups[g]) > maxNode {
			maxNode = len(h.groups[g])
		}
	}
	h.viable = len(h.groups) > 1 && maxNode > 1
	myG := h.groupOf[c.rank]
	grp := h.groups[myG]
	// Node tier: the members on this rank's machine, in rank order, so
	// node rank 0 is the leader. Every member of the parent computes the
	// same (parent id, seq) key, so allocContext hands all of them the
	// same base id; distinct machines get distinct offsets.
	nodeBase := w.allocContext(c.s.id, hierSeqNode)
	nodeMembers := make([]int, len(grp))
	myNodeRank := -1
	for i, r := range grp {
		nodeMembers[i] = c.s.members[r]
		if r == c.rank {
			myNodeRank = i
		}
	}
	h.node = &Comm{
		p:      c.p,
		s:      &commShared{id: nodeBase + int64(myG), members: nodeMembers},
		rank:   myNodeRank,
		tuning: c.tuning,
	}
	// Net tier: one leader per machine, ordered by group index (ascending
	// leader rank). Only leaders hold a handle.
	if grp[0] == c.rank {
		netID := w.allocContext(c.s.id, hierSeqNet)
		netMembers := make([]int, len(h.groups))
		for g, gr := range h.groups {
			netMembers[g] = c.s.members[gr[0]]
		}
		h.net = &Comm{
			p:      c.p,
			s:      &commShared{id: netID, members: netMembers},
			rank:   myG,
			tuning: c.tuning,
		}
	}
	c.hi = h
	return h
}

// hierViable reports whether the communicator has a genuine two-level
// structure (spans >1 machine and some machine holds >1 member). Every
// member computes the same answer from the shared placement, so the
// hierarchical algorithms can key on it without negotiation.
func (c *Comm) hierViable() bool {
	if len(c.s.members) < 3 {
		return false // two levels need at least 2 machines x (1+2) ranks
	}
	return c.hier().viable
}

// NodeComm returns the communicator's node tier: the members placed on
// this rank's machine, in communicator-rank order (node rank 0 is the
// machine's leader). Derived lazily from the placement and cached; the
// tier is owned by this communicator and released by its Free.
func (c *Comm) NodeComm() *Comm { return c.hier().node }

// NetComm returns the communicator's net tier — one leader (the lowest
// communicator rank) per machine — on leaders, and nil on every other
// rank. The net rank of a leader equals its machine-group index (see
// NodeLeaders).
func (c *Comm) NetComm() *Comm { return c.hier().net }

// NodeLeader returns the communicator rank of this rank's machine leader.
func (c *Comm) NodeLeader() int {
	h := c.hier()
	return h.groups[h.groupOf[c.rank]][0]
}

// NodeLeaders returns the communicator rank of every machine's leader,
// indexed by machine-group (ascending leader rank — the net tier's rank
// order).
func (c *Comm) NodeLeaders() []int {
	h := c.hier()
	out := make([]int, len(h.groups))
	for g, grp := range h.groups {
		out[g] = grp[0]
	}
	return out
}

// freeHier releases the cached tier communicators (called by Comm.Free:
// the parent owns its tiers).
func (c *Comm) freeHier() {
	if c.hi == nil {
		return
	}
	h := c.hi
	c.hi = nil
	if h.node != nil {
		h.node.Free()
	}
	if h.net != nil {
		h.net.Free()
	}
}

// --- resolution ---------------------------------------------------------
//
// The *AlgFor methods are the communicator-aware layer over CollTuning's
// pure threshold resolution: they add the hierarchy choice, which a bare
// CollTuning cannot make (it does not know the placement). An explicitly
// requested hierarchical algorithm on a communicator without a two-level
// structure falls back to the size-aware Auto resolution — the viability
// answer is agreed, so the fallback is too.

func (c *Comm) allreduceAlgFor(n, nbytes int) AllreduceAlg {
	t := c.coll()
	alg := t.Allreduce
	if alg == AllreduceHier {
		if c.hierViable() {
			return AllreduceHier
		}
		alg = AllreduceAuto
	}
	if alg != AllreduceAuto {
		return alg
	}
	if nbytes >= t.allreduceHierMinBytes() && c.hierViable() {
		return AllreduceHier
	}
	return t.allreduceAutoAlg(n, nbytes)
}

// bcastAlgFor is the root-side resolution (only the root knows the
// payload size); the choice travels down the tree in the bcast header.
func (c *Comm) bcastAlgFor(nbytes int) BcastAlg {
	t := c.coll()
	alg := t.Bcast
	if alg == BcastHier {
		if c.hierViable() {
			return BcastHier
		}
		alg = BcastAuto
	}
	if alg != BcastAuto {
		return alg
	}
	if nbytes >= t.bcastHierMinBytes() && nbytes <= t.bcastHierMaxBytes() && c.hierViable() {
		return BcastHier
	}
	return t.bcastAutoAlg(nbytes)
}

func (c *Comm) gatherAlgFor(n, nbytes int) GatherAlg {
	t := c.coll()
	alg := t.Gather
	if alg == GatherHier {
		if c.hierViable() {
			return GatherHier
		}
		alg = GatherAuto
	}
	if alg != GatherAuto {
		return alg
	}
	if nbytes <= t.gatherHierMaxBytes() && c.hierViable() {
		return GatherHier
	}
	return t.gatherAutoAlg(n, nbytes)
}

func (c *Comm) reduceScatterAlgFor(totalBytes int) ReduceScatterAlg {
	t := c.coll()
	alg := t.ReduceScatter
	if alg == ReduceScatterHier {
		if c.hierViable() {
			return ReduceScatterHier
		}
		alg = ReduceScatterAuto
	}
	if alg != ReduceScatterAuto {
		return alg
	}
	if totalBytes >= t.reduceScatterHierMinBytes() && c.hierViable() {
		return ReduceScatterHier
	}
	return ReduceScatterPairwise
}

// --- the two-level algorithms -------------------------------------------

// allreduceHier: binomial reduce to each machine's leader over the node
// tier, Allreduce among the leaders over the net tier (which resolves its
// own flat algorithm — the ring for large payloads), then broadcast from
// the leader over the node tier. Each payload crosses the slow
// inter-machine network only in the leaders' round; everything else rides
// the machines' internal buses.
func (c *Comm) allreduceHier(data []byte, op Op) []byte {
	h := c.hier()
	red := h.node.Reduce(0, data, op)
	if h.net != nil {
		red = h.net.Allreduce(red, op)
	}
	return h.node.Bcast(0, red)
}

// bcastHier: the root hands the payload to its machine leader (one fast
// intra-machine hop, skipped when the root is the leader), the leaders
// broadcast over the net tier, and each leader fans out over its node
// tier.
func (c *Comm) bcastHier(root int, data []byte) []byte {
	h := c.hier()
	rg := h.groupOf[root]
	rootLeader := h.groups[rg][0]
	if root != rootLeader {
		switch c.rank {
		case root:
			c.Send(rootLeader, tagHier, data)
		case rootLeader:
			data = c.collRecv(root, tagHier)
		}
	}
	if h.net != nil {
		data = h.net.Bcast(rg, data)
	}
	return h.node.Bcast(0, data)
}

// gatherHier: each node tier gathers onto its leader, the leader frames
// its machine's contributions into one (rank, payload) bundle, the net
// tier gathers the bundles onto the root machine's leader (a flat fan —
// bundles are large, so per-message overhead is not the issue at this
// level), and a final intra-machine hop delivers the concatenation to the
// root when it is not its machine's leader. The root absorbs M-1 bundle
// messages instead of P-1 small ones. Like GatherAuto, selection keys on
// the local payload size, so Auto-selected hierarchical gathers require
// agreed sizes; the bundles themselves frame every payload, so the data
// path handles irregular sizes.
func (c *Comm) gatherHier(root int, data []byte) [][]byte {
	h := c.hier()
	g := h.groupOf[c.rank]
	rg := h.groupOf[root]
	rootLeader := h.groups[rg][0]
	// Both tier gathers use the flat fan directly: the public Gather's
	// Auto resolution keys on the local payload size, which may disagree
	// across members of an irregular gather — the flat fan never desyncs.
	if h.node.Size() > 1 {
		h.node.collCheck()
	}
	nodeParts := h.node.gatherFlat(0, data)
	var bundle []byte
	if c.rank == h.groups[g][0] {
		for i, d := range nodeParts {
			bundle = bundleAppend(bundle, h.groups[g][i], d)
		}
	}
	var merged []byte
	if h.net != nil {
		if h.net.Size() > 1 {
			h.net.collCheck()
		}
		netOut := h.net.gatherFlat(rg, bundle)
		if c.rank == rootLeader {
			for _, b := range netOut {
				merged = append(merged, b...)
			}
		}
	}
	if root != rootLeader {
		switch c.rank {
		case rootLeader:
			c.SendOwned(root, tagHier, merged)
			return nil
		case root:
			merged = c.collRecv(rootLeader, tagHier)
		}
	}
	if c.rank != root {
		return nil
	}
	out := make([][]byte, c.Size())
	bundleEach(merged, func(r int, d []byte) {
		out[r] = append([]byte(nil), d...)
	})
	return out
}

// reduceScatterHier: each node tier binomial-reduces the full
// concatenated vector onto its leader (intra-machine bandwidth), the
// leaders run the pairwise exchange over the net tier at machine-block
// granularity (each machine's block is the concatenation of its members'
// destinations — the sizes were validated by the dispatcher, so the
// blocks agree without a second validation round), and each leader
// scatters its machine's block to the members.
func (c *Comm) reduceScatterHier(parts [][]byte, op Op) []byte {
	h := c.hier()
	n := c.Size()
	offs := make([]int, n+1)
	for r, p := range parts {
		offs[r+1] = offs[r] + len(p)
	}
	flat := make([]byte, 0, offs[n])
	for _, p := range parts {
		flat = append(flat, p...)
	}
	red := h.node.Reduce(0, flat, op)
	g := h.groupOf[c.rank]
	var nodeParts [][]byte
	if h.net != nil {
		blocks := make([][]byte, len(h.groups))
		for bg, grp := range h.groups {
			var b []byte
			for _, r := range grp {
				b = append(b, red[offs[r]:offs[r+1]]...)
			}
			blocks[bg] = b
		}
		var myBlock []byte
		if h.net.Size() > 1 {
			h.net.collCheck()
			myBlock = h.net.reduceScatterPairwise(blocks, op)
		} else {
			myBlock = blocks[g]
		}
		grp := h.groups[g]
		nodeParts = make([][]byte, len(grp))
		off := 0
		for i, r := range grp {
			sz := offs[r+1] - offs[r]
			nodeParts[i] = myBlock[off : off+sz]
			off += sz
		}
	}
	if h.node.Size() > 1 {
		h.node.collCheck()
	}
	return h.node.scatterFlat(0, nodeParts)
}

// hierAllreduceSteps builds the hierarchical Iallreduce schedule on the
// parent communicator's rank space: binomial reduce to the machine leader
// over the node members, reduce-to-first-leader + broadcast among the
// leaders (schedules express single-buffer steps, so the net phase is the
// redbcast shape rather than the chunked ring), then broadcast from the
// leader over the node members. Every receive step has a distinct peer —
// node children, net children, net parent and node parent never coincide
// — so the progress engine's claim-ahead stays FIFO-safe.
func (c *Comm) hierAllreduceSteps(sc *nbSched) {
	h := c.hier()
	g := h.groupOf[c.rank]
	grp := h.groups[g]
	me := 0
	for i, r := range grp {
		if r == c.rank {
			me = i
		}
	}
	// Node reduce towards the leader (group index 0).
	for mask := 1; mask < len(grp); mask <<= 1 {
		if me&mask != 0 {
			sc.steps = append(sc.steps, nbStep{kind: nbSendBuf, peer: grp[me&^mask]})
			break
		}
		if child := me | mask; child < len(grp) {
			sc.steps = append(sc.steps, nbStep{kind: nbRecvReduce, peer: grp[child]})
		}
	}
	if me == 0 {
		// Net redbcast among the leaders (my net index is g).
		nl := len(h.groups)
		for mask := 1; mask < nl; mask <<= 1 {
			if g&mask != 0 {
				sc.steps = append(sc.steps, nbStep{kind: nbSendBuf, peer: h.groups[g&^mask][0]})
				break
			}
			if child := g | mask; child < nl {
				sc.steps = append(sc.steps, nbStep{kind: nbRecvReduce, peer: h.groups[child][0]})
			}
		}
		recvMask := 1
		for recvMask < nl {
			if g&recvMask != 0 {
				sc.steps = append(sc.steps, nbStep{kind: nbRecvBuf, peer: h.groups[g-recvMask][0]})
				break
			}
			recvMask <<= 1
		}
		recvMask >>= 1
		for recvMask > 0 {
			if g+recvMask < nl {
				sc.steps = append(sc.steps, nbStep{kind: nbSendBuf, peer: h.groups[g+recvMask][0]})
			}
			recvMask >>= 1
		}
	}
	// Node broadcast from the leader.
	recvMask := 1
	for recvMask < len(grp) {
		if me&recvMask != 0 {
			sc.steps = append(sc.steps, nbStep{kind: nbRecvBuf, peer: grp[me-recvMask]})
			break
		}
		recvMask <<= 1
	}
	recvMask >>= 1
	for recvMask > 0 {
		if me+recvMask < len(grp) {
			sc.steps = append(sc.steps, nbStep{kind: nbSendBuf, peer: grp[me+recvMask]})
		}
		recvMask >>= 1
	}
}
