package mpi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/hnoc"
)

// fatTestCluster is a small fat-node topology for the hierarchy tests:
// three machines holding 3, 2 and 3 processes with distinct internal
// buses, joined by the slow test LAN. Small enough for the TCP transport
// matrix.
func fatTestCluster() (*hnoc.Cluster, []int) {
	return hnoc.FatNodes(
		[]float64{10, 20, 30},
		[]int{3, 2, 3},
		[]hnoc.LinkSpec{
			{Protocol: hnoc.ProtoSHM, Latency: 1e-6, Bandwidth: 200e6, Overhead: 1e-6},
			{Protocol: hnoc.ProtoSHM, Latency: 2e-6, Bandwidth: 100e6, Overhead: 1e-6},
			{Protocol: hnoc.ProtoSHM, Latency: 2e-6, Bandwidth: 150e6, Overhead: 1e-6},
		},
		hnoc.LinkSpec{Protocol: hnoc.ProtoTCP, Latency: 1e-3, Bandwidth: 1e6},
	)
}

// runPlaced runs main on a world with an explicit placement (co-located
// processes), under either transport.
func runPlaced(t *testing.T, cl *hnoc.Cluster, place []int, tcp bool, tuning *CollTuning, main func(p *Proc) error) {
	t.Helper()
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tcp {
		w, closeT, err := NewWorldTCPOpts(cl, place, TCPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer closeT()
		w.SetCollTuning(tuning)
		if err := w.Run(main); err != nil {
			t.Fatal(err)
		}
		return
	}
	w := NewWorld(cl, place)
	w.SetCollTuning(tuning)
	if err := w.Run(main); err != nil {
		t.Fatal(err)
	}
}

// TestHierTierStructure pins the derived hierarchy on the benchmark
// topology: 3 machines x 8 processes, leaders at ranks 0/8/16, node tiers
// in rank order, net tier only on leaders.
func TestHierTierStructure(t *testing.T) {
	cl, place := hnoc.FatNode3x8()
	runPlaced(t, cl, place, false, nil, func(p *Proc) error {
		c := p.CommWorld()
		leaders := c.NodeLeaders()
		if fmt.Sprint(leaders) != "[0 8 16]" {
			return fmt.Errorf("rank %d: leaders %v, want [0 8 16]", p.Rank(), leaders)
		}
		node := c.NodeComm()
		if node.Size() != 8 {
			return fmt.Errorf("rank %d: node size %d, want 8", p.Rank(), node.Size())
		}
		wantLeader := (p.Rank() / 8) * 8
		if c.NodeLeader() != wantLeader {
			return fmt.Errorf("rank %d: leader %d, want %d", p.Rank(), c.NodeLeader(), wantLeader)
		}
		if got := node.WorldRankOf(node.Rank()); got != p.Rank() {
			return fmt.Errorf("rank %d: node tier maps back to world rank %d", p.Rank(), got)
		}
		if node.Rank() != p.Rank()%8 {
			return fmt.Errorf("rank %d: node rank %d, want %d", p.Rank(), node.Rank(), p.Rank()%8)
		}
		net := c.NetComm()
		if p.Rank() == wantLeader {
			if net == nil || net.Size() != 3 || net.Rank() != p.Rank()/8 {
				return fmt.Errorf("rank %d: bad net tier %v", p.Rank(), net)
			}
		} else if net != nil {
			return fmt.Errorf("rank %d: non-leader has a net tier", p.Rank())
		}
		// The node tier spans one machine, so it is never hier-viable and
		// the tier recursion terminates.
		if node.hierViable() {
			return fmt.Errorf("rank %d: node tier claims hier viability", p.Rank())
		}
		return nil
	})
}

// TestHierAllreduceMatchesFlat: the hierarchical Allreduce produces the
// serial fold bit-exactly on a fat-node topology, on both transports,
// including the empty and single-element edges.
func TestHierAllreduceMatchesFlat(t *testing.T) {
	cl, place := fatTestCluster()
	n := len(place)
	for _, tcp := range []bool{false, true} {
		for _, elems := range []int{0, 1, 3, 1024} {
			t.Run(fmt.Sprintf("%s/e%d", transports(tcp), elems), func(t *testing.T) {
				want := make([]int64, elems)
				for r := 0; r < n; r++ {
					for i, v := range contribution(r, elems) {
						want[i] += v
					}
				}
				runPlaced(t, cl, place, tcp, &CollTuning{Allreduce: AllreduceHier}, func(p *Proc) error {
					got := BytesInt64(p.CommWorld().Allreduce(Int64Bytes(contribution(p.Rank(), elems)), SumInt64))
					if len(got) != len(want) {
						return fmt.Errorf("rank %d: got %d elems, want %d", p.Rank(), len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							return fmt.Errorf("rank %d elem %d: got %d, want %d", p.Rank(), i, got[i], want[i])
						}
					}
					return nil
				})
			})
		}
	}
}

// TestHierBcastMatchesFlat: the hierarchical broadcast delivers the
// root's bytes exactly for leader, non-leader and last-machine roots, on
// both transports.
func TestHierBcastMatchesFlat(t *testing.T) {
	cl, place := fatTestCluster()
	for _, tcp := range []bool{false, true} {
		for _, root := range []int{0, 4, 7} {
			for _, size := range []int{0, 1, 777} {
				t.Run(fmt.Sprintf("%s/root%d/s%d", transports(tcp), root, size), func(t *testing.T) {
					want := make([]byte, size)
					for i := range want {
						want[i] = byte(i*13 + 7)
					}
					runPlaced(t, cl, place, tcp, &CollTuning{Bcast: BcastHier}, func(p *Proc) error {
						var data []byte
						if p.Rank() == root {
							data = append([]byte(nil), want...)
						}
						got := p.CommWorld().Bcast(root, data)
						if !bytes.Equal(got, want) {
							return fmt.Errorf("rank %d: got %d bytes, want %d", p.Rank(), len(got), len(want))
						}
						return nil
					})
				})
			}
		}
	}
}

// TestHierGatherMatchesFlat: the hierarchical gather returns exactly the
// flat gather's rank-indexed result, with irregular per-member sizes
// (including empty contributions) and non-leader roots, on both
// transports.
func TestHierGatherMatchesFlat(t *testing.T) {
	cl, place := fatTestCluster()
	n := len(place)
	payload := func(rank int) []byte {
		out := make([]byte, (rank*3)%5)
		for i := range out {
			out[i] = byte(rank*31 + i)
		}
		return out
	}
	for _, tcp := range []bool{false, true} {
		for _, root := range []int{0, 4, 7} {
			t.Run(fmt.Sprintf("%s/root%d", transports(tcp), root), func(t *testing.T) {
				runPlaced(t, cl, place, tcp, &CollTuning{Gather: GatherHier}, func(p *Proc) error {
					got := p.CommWorld().Gather(root, payload(p.Rank()))
					if p.Rank() != root {
						if got != nil {
							return fmt.Errorf("rank %d: non-root got %v", p.Rank(), got)
						}
						return nil
					}
					if len(got) != n {
						return fmt.Errorf("root got %d entries, want %d", len(got), n)
					}
					for r := 0; r < n; r++ {
						if !bytes.Equal(got[r], payload(r)) {
							return fmt.Errorf("entry %d: got %v, want %v", r, got[r], payload(r))
						}
					}
					return nil
				})
			})
		}
	}
}

// TestHierReduceScatterMatchesFlat: the hierarchical reduce-scatter
// returns each member's reduced block exactly, with irregular
// per-destination sizes, on both transports.
func TestHierReduceScatterMatchesFlat(t *testing.T) {
	cl, place := fatTestCluster()
	n := len(place)
	elemsFor := func(dst int) int { return dst%3 + 1 }
	partFor := func(rank, dst int) []int64 {
		out := make([]int64, elemsFor(dst))
		for i := range out {
			out[i] = int64(rank*1009 + dst*97 + i)
		}
		return out
	}
	for _, tcp := range []bool{false, true} {
		t.Run(transports(tcp), func(t *testing.T) {
			runPlaced(t, cl, place, tcp, &CollTuning{ReduceScatter: ReduceScatterHier}, func(p *Proc) error {
				parts := make([][]byte, n)
				for d := 0; d < n; d++ {
					parts[d] = Int64Bytes(partFor(p.Rank(), d))
				}
				got := BytesInt64(p.CommWorld().ReduceScatter(parts, SumInt64))
				want := make([]int64, elemsFor(p.Rank()))
				for r := 0; r < n; r++ {
					for i, v := range partFor(r, p.Rank()) {
						want[i] += v
					}
				}
				if len(got) != len(want) {
					return fmt.Errorf("rank %d: got %d elems, want %d", p.Rank(), len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("rank %d elem %d: got %d, want %d", p.Rank(), i, got[i], want[i])
					}
				}
				return nil
			})
		})
	}
}

// TestHierAutoSelection pins the Auto dispatch on a two-level
// communicator: hierarchical above the Hier thresholds, flat below; tier
// communicators and explicit-Hier fallbacks resolve flat; derived
// communicators inherit the policy.
func TestHierAutoSelection(t *testing.T) {
	cl, place := hnoc.FatNode3x8()
	runPlaced(t, cl, place, false, AutoCollTuning(), func(p *Proc) error {
		c := p.CommWorld()
		checks := []struct {
			name string
			got  any
			want any
		}{
			{"allreduce/large", c.allreduceAlgFor(24, 1 << 20), AllreduceHier},
			{"allreduce/small", c.allreduceAlgFor(24, 1024), AllreduceRecursiveDoubling},
			{"bcast/large", c.bcastAlgFor(1 << 20), BcastHier},
			{"bcast/small", c.bcastAlgFor(1024), BcastBinomial},
			{"gather/small", c.gatherAlgFor(24, 512), GatherHier},
			{"gather/large", c.gatherAlgFor(24, 1 << 20), GatherFlat},
			{"reducescatter/large", c.reduceScatterAlgFor(1 << 20), ReduceScatterHier},
			{"reducescatter/small", c.reduceScatterAlgFor(100), ReduceScatterPairwise},
			// Tier communicators are single-machine / one-rank-per-machine:
			// never hier, so the recursion bottoms out in flat algorithms.
			{"node/large", c.NodeComm().allreduceAlgFor(8, 1 << 20), AllreduceRing},
			// Derived communicators inherit the policy and recompute tiers.
			{"dup/large", c.Dup().allreduceAlgFor(24, 1 << 20), AllreduceHier},
		}
		for _, ck := range checks {
			if ck.got != ck.want {
				return fmt.Errorf("rank %d: %s resolved %v, want %v", p.Rank(), ck.name, ck.got, ck.want)
			}
		}
		// An explicitly hierarchical policy falls back to the flat
		// resolution on a communicator without a two-level structure.
		d := c.Dup().SetCollTuning(&CollTuning{Allreduce: AllreduceHier})
		if alg := d.NodeComm().allreduceAlgFor(8, 64); alg != AllreduceRecursiveDoubling {
			return fmt.Errorf("rank %d: explicit hier on node tier resolved %v", p.Rank(), alg)
		}
		if alg := d.allreduceAlgFor(24, 64); alg != AllreduceHier {
			return fmt.Errorf("rank %d: explicit hier on world resolved %v", p.Rank(), alg)
		}
		return nil
	})
}

// catchPanic runs f and returns the panic message, or "" if f returned
// normally.
func catchPanic(f func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	f()
	return ""
}

// TestCollTuningThresholdSemantics pins the satellite fix: zero keeps
// selecting the library default (the zero value of CollTuning is the
// documented default policy), while a negative override — which used to
// silently fall back to the default — now fails loudly, both through the
// exported getters and on the collective path.
func TestCollTuningThresholdSemantics(t *testing.T) {
	var zero CollTuning
	if got := zero.ResolvedAllreduceRingMinBytes(); got != 32<<10 {
		t.Fatalf("zero ring threshold resolved %d, want the 32 KiB default", got)
	}
	if got := zero.ResolvedAllreduceHierMinBytes(); got != 64<<10 {
		t.Fatalf("zero hier threshold resolved %d, want the 64 KiB default", got)
	}
	neg := &CollTuning{AllreduceHierMinBytes: -1}
	if msg := catchPanic(func() { neg.ResolvedAllreduceHierMinBytes() }); !strings.Contains(msg, "must not be negative") {
		t.Fatalf("negative threshold: got %q, want a loud panic", msg)
	}
	// On the collective path the panic surfaces as a Run error.
	c := testCluster(3)
	w := NewWorld(c, OneProcessPerMachine(c))
	w.SetCollTuning(&CollTuning{Allreduce: AllreduceAuto, AllreduceRingMinBytes: -5})
	err := w.Run(func(p *Proc) error {
		p.CommWorld().Allreduce(make([]byte, 8), SumInt64)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "AllreduceRingMinBytes must not be negative") {
		t.Fatalf("Run with negative threshold returned %v, want a loud panic", err)
	}
}

// TestHierRecomputeAfterShrink is the satellite property test: after
// Shrink removes a machine's last rank (or a leader), the shrunk
// communicator and everything derived from it recompute their node/net
// tiers from their own member lists instead of stale-sharing the
// parent's cache.
func TestHierRecomputeAfterShrink(t *testing.T) {
	cases := []struct {
		counts []int
		fail   int // world rank to fail
	}{
		{[]int{2, 1, 2}, 2}, // machine 1's only rank disappears
		{[]int{3, 1, 1}, 3},
		{[]int{2, 2, 1}, 4},
		{[]int{2, 2, 0}, 0}, // a leader disappears; machine 0's tier re-elects
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("counts%v/fail%d", tc.counts, tc.fail), func(t *testing.T) {
			cl, place := hnoc.FatNodes(
				[]float64{10, 20, 30},
				tc.counts,
				make([]hnoc.LinkSpec, 3),
				hnoc.LinkSpec{Protocol: hnoc.ProtoTCP, Latency: 1e-3, Bandwidth: 1e6},
			)
			if err := cl.Validate(); err != nil {
				t.Fatal(err)
			}
			// Expected tier structure of the survivor set, computed from
			// the placement alone (the property the derivation must hold).
			expectGroups := func(members []int) [][]int {
				byMachine := map[int]int{}
				var groups [][]int
				for i, wr := range members {
					m := place[wr]
					g, ok := byMachine[m]
					if !ok {
						g = len(groups)
						byMachine[m] = g
						groups = append(groups, nil)
					}
					groups[g] = append(groups[g], i)
				}
				return groups
			}
			w := NewWorld(cl, place)
			w.Fail(tc.fail)
			err := runWithTimeout(t, w, 10*time.Second, func(p *Proc) error {
				if p.Rank() == tc.fail {
					return nil
				}
				comm := p.CommWorld()
				staleLeaders := fmt.Sprint(comm.NodeLeaders()) // cache the full-world hierarchy
				sc := comm.Shrink()
				members := make([]int, sc.Size())
				for i := range members {
					members[i] = sc.WorldRankOf(i)
				}
				want := expectGroups(members)
				wantLeaders := make([]int, len(want))
				for g, grp := range want {
					wantLeaders[g] = grp[0]
				}
				for name, d := range map[string]*Comm{
					"shrunk": sc,
					"dup":    sc.Dup(),
					"split":  sc.Split(0, sc.Rank()),
				} {
					if got := fmt.Sprint(d.NodeLeaders()); got != fmt.Sprint(wantLeaders) {
						return fmt.Errorf("rank %d: %s leaders %s, want %v", p.Rank(), name, got, wantLeaders)
					}
					myG := -1
					for g, grp := range want {
						for _, r := range grp {
							if r == d.Rank() {
								myG = g
							}
						}
					}
					if got := d.NodeComm().Size(); got != len(want[myG]) {
						return fmt.Errorf("rank %d: %s node size %d, want %d", p.Rank(), name, got, len(want[myG]))
					}
					isLeader := want[myG][0] == d.Rank()
					if (d.NetComm() != nil) != isLeader {
						return fmt.Errorf("rank %d: %s net tier presence %v, leader %v", p.Rank(), name, d.NetComm() != nil, isLeader)
					}
				}
				// The parent's own cache is its pre-shrink structure — the
				// derived communicators must not have mutated it.
				if got := fmt.Sprint(comm.NodeLeaders()); got != staleLeaders {
					return fmt.Errorf("rank %d: parent cache mutated: %s -> %s", p.Rank(), staleLeaders, got)
				}
				// A freed communicator refuses to derive a hierarchy.
				f := sc.Dup()
				f.Free()
				if msg := catchPanic(func() { f.NodeComm() }); !strings.Contains(msg, "freed") {
					return fmt.Errorf("rank %d: freed comm derived a hierarchy (%q)", p.Rank(), msg)
				}
				sc.Barrier()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIallreduceHierMatchesBlocking: the nonblocking hierarchical
// schedule returns the same payload as the blocking algorithm and its
// virtual makespan is deterministic across runs.
func TestIallreduceHierMatchesBlocking(t *testing.T) {
	cl, place := fatTestCluster()
	n := len(place)
	elems := 1024
	want := make([]int64, elems)
	for r := 0; r < n; r++ {
		for i, v := range contribution(r, elems) {
			want[i] += v
		}
	}
	makespans := make([]string, 2)
	for run := 0; run < 2; run++ {
		w := NewWorld(cl, place)
		w.SetCollTuning(&CollTuning{Allreduce: AllreduceHier})
		if err := w.Run(func(p *Proc) error {
			req := p.CommWorld().Iallreduce(Int64Bytes(contribution(p.Rank(), elems)), SumInt64)
			buf, _ := req.Wait()
			got := BytesInt64(buf)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("rank %d elem %d: got %d, want %d", p.Rank(), i, got[i], want[i])
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		makespans[run] = fmt.Sprint(w.Makespan())
	}
	if makespans[0] != makespans[1] {
		t.Fatalf("nonblocking hier makespan not deterministic: %s vs %s", makespans[0], makespans[1])
	}
}
