package mpi

// Nonblocking collectives. Ibcast and Iallreduce build the exact
// communication tree of their blocking counterparts (binomial broadcast,
// reduce-to-0 + broadcast) as a schedule of point-to-point steps and
// execute it incrementally:
//
//   - At the post, the leading send steps run immediately — an Isend-like
//     burst that charges one overhead per send — stopping at the first
//     receive step. A rank whose schedule starts with a receive (every
//     non-root in a broadcast) does nothing at the post.
//   - While the operation is pending, the progress engine claims arrived
//     envelopes for the schedule's receive steps (claim reads no clocks;
//     see request.go). Within one schedule every receive has a distinct
//     peer, so claiming ahead of execution can never reorder a per-pair
//     FIFO.
//   - Wait executes the remaining steps in schedule order against a
//     private virtual cursor: a receive step raises the cursor to
//     max(cursor, arrival) + overhead, a send step anchors its transfer
//     at the cursor and advances it by the overhead. The cursor starts at
//     the later of the post time and the Wait entry, so compute performed
//     between post and Wait overlaps the schedule's communication; at the
//     end the rank's clock absorbs the cursor.
//
// Every rank executes its own schedule in a deterministic order with
// deterministic timing inputs (arrival times come from the virtual model),
// so virtual clocks are bit-reproducible even though claiming is driven
// by wall-clock arrival order. Test on a collective request executes only
// the steps whose messages have already been claimed — like Test on a
// receive, it is documented as wall-sensitive.

import (
	"repro/internal/trace"
	"repro/internal/vclock"
)

// nbcollTagBase is the top of the tag space reserved for nonblocking
// collectives, far below the -100..-111 block of the blocking ones. Each
// posted operation takes one tag below the base, so several nonblocking
// collectives can be in flight on one communicator without their traffic
// crossing.
const nbcollTagBase = -(1 << 20)

// nbTag returns the agreed tag for the next nonblocking collective on
// this communicator. Members post collectives in the same order (the
// usual collective-call contract), so the per-handle counter agrees.
func (c *Comm) nbTag() int {
	c.nbSeq++
	return nbcollTagBase - int(c.nbSeq)
}

// nbKind is what one schedule step does with the schedule buffer.
type nbKind uint8

const (
	nbSendBuf    nbKind = iota // send the current buffer to peer
	nbRecvBuf                  // receive from peer, replacing the buffer
	nbRecvReduce               // receive from peer, folding into the buffer
)

type nbStep struct {
	kind nbKind
	peer int       // communicator rank
	env  *envelope // claimed by the progress engine, not yet executed
}

// nbSched is the state of one posted nonblocking collective.
type nbSched struct {
	name   string // "ibcast" or "iallreduce", for traces
	tag    int
	buf    []byte
	op     Op     // nbRecvReduce operator (Iallreduce)
	opName string // for the length-mismatch panic
	steps  []nbStep
	next   int         // first unexecuted step
	st     vclock.Time // virtual cursor of the executed prefix
}

// Ibcast starts a nonblocking broadcast of root's data along the binomial
// tree of the blocking Bcast. Wait returns the received payload (root
// gets data back unchanged).
func (c *Comm) Ibcast(root int, data []byte) *Request {
	c.checkRank("Ibcast", root)
	sc := &nbSched{name: "ibcast", buf: data}
	n := c.Size()
	if n > 1 {
		c.collCheck()
		sc.tag = c.nbTag()
		vrank := (c.rank - root + n) % n
		mask := 1
		for mask < n {
			if vrank&mask != 0 {
				sc.steps = append(sc.steps, nbStep{kind: nbRecvBuf, peer: (c.rank - mask + n) % n})
				break
			}
			mask <<= 1
		}
		mask >>= 1
		for mask > 0 {
			if vrank+mask < n {
				sc.steps = append(sc.steps, nbStep{kind: nbSendBuf, peer: (c.rank + mask) % n})
			}
			mask >>= 1
		}
	}
	return c.postColl(sc, len(data))
}

// Iallreduce starts a nonblocking allreduce: the reduce-to-rank-0 tree of
// the blocking Reduce followed by the broadcast tree of the blocking
// Bcast, folded into one schedule. Wait returns the combined result on
// every member. All members must pass equal-length data; op must be
// associative and commutative.
func (c *Comm) Iallreduce(data []byte, op Op) *Request {
	sc := &nbSched{name: "iallreduce", buf: append([]byte(nil), data...), op: op, opName: "Iallreduce"}
	n := c.Size()
	if n > 1 {
		c.collCheck()
		sc.tag = c.nbTag()
		if c.allreduceAlgFor(n, len(data)) == AllreduceHier {
			// Hierarchy-aware schedule: node-tier reduce to the machine
			// leader, redbcast among leaders, node-tier broadcast (see
			// hier.go). The selection is agreed (all members resolve the
			// same algorithm from the same tuning and placement).
			c.hierAllreduceSteps(sc)
			return c.postColl(sc, len(data))
		}
		// Reduce towards rank 0: fold each child rank|mask, then hand the
		// accumulator to the parent rank&^mask at this rank's lowest set
		// bit. Fold order matches the blocking Reduce exactly.
		mask := 1
		for mask < n {
			if c.rank&mask != 0 {
				sc.steps = append(sc.steps, nbStep{kind: nbSendBuf, peer: c.rank &^ mask})
				break
			}
			if child := c.rank | mask; child < n {
				sc.steps = append(sc.steps, nbStep{kind: nbRecvReduce, peer: child})
			}
			mask <<= 1
		}
		// Broadcast the result from rank 0 down the binomial tree.
		recvMask := 1
		for recvMask < n {
			if c.rank&recvMask != 0 {
				sc.steps = append(sc.steps, nbStep{kind: nbRecvBuf, peer: c.rank - recvMask})
				break
			}
			recvMask <<= 1
		}
		recvMask >>= 1
		for recvMask > 0 {
			if c.rank+recvMask < n {
				sc.steps = append(sc.steps, nbStep{kind: nbSendBuf, peer: c.rank + recvMask})
			}
			recvMask >>= 1
		}
	}
	return c.postColl(sc, len(data))
}

// postColl registers a built schedule with the progress engine and runs
// its leading send burst. The posting event (KindColl with A3 = 1 and the
// request id in A2) is emitted at the post, where the agreed posting
// order holds, so the collective-sequence check of hmpiverify stays
// sound for nonblocking collectives too.
func (c *Comm) postColl(sc *nbSched, bytes int) *Request {
	p := c.p
	p.progress()
	p.reqID++
	r := &Request{id: p.reqID, kind: reqColl, c: c, sched: sc}
	if rec := p.world.rec; rec != nil {
		now := p.clock.Now()
		wall := rec.NowNS()
		rec.Emit(p.rank, trace.Event{
			Rank: int32(p.rank), Kind: trace.KindColl, Peer: -1,
			Ctx: c.s.id, Bytes: int64(bytes), Name: sc.name,
			Start: now, End: now, WallStart: wall, WallEnd: wall,
			A2: r.id, A3: 1,
		})
	}
	sc.st = p.clock.Now()
	for sc.next < len(sc.steps) && sc.steps[sc.next].kind == nbSendBuf {
		sc.execSend(c, &sc.steps[sc.next])
		sc.next++
	}
	p.clock.AbsorbAtLeast(sc.st)
	if sc.next < len(sc.steps) {
		p.eng.colls = append(p.eng.colls, r)
	}
	return r
}

// claim pins arrived envelopes to the schedule's unexecuted receive
// steps. Timing-neutral: ownership only.
func (sc *nbSched) claim(c *Comm) {
	for i := sc.next; i < len(sc.steps); i++ {
		s := &sc.steps[i]
		if s.kind == nbSendBuf || s.env != nil {
			continue
		}
		s.env = c.p.mbox.tryGet(c.sel(s.peer, sc.tag), false)
	}
}

// execSend runs one send step: the transfer anchors at the cursor instead
// of the rank's clock, and the cursor advances by the send overhead. The
// payload is copied (the schedule buffer stays reusable), mirroring the
// forwarding Send of the blocking trees.
func (sc *nbSched) execSend(c *Comm, s *nbStep) {
	_, cpuFree := c.sendCore(s.peer, sc.tag, sc.buf, true, sc.st, nil)
	sc.st = cpuFree
}

// execRecv runs one receive step against the envelope e: the cursor
// absorbs the arrival and advances by the receive overhead, statistics
// and the trace record the transfer, and the payload lands in the
// schedule buffer (replaced or folded, by step kind).
func (sc *nbSched) execRecv(c *Comm, s *nbStep, e *envelope) {
	p := c.p
	p.opTick()
	link := p.world.cluster.Link(p.world.place[e.src], p.machine)
	before := sc.st
	if e.arrive > sc.st {
		sc.st = e.arrive
	}
	sc.st += vclock.Time(link.Overhead)
	p.stats.BytesRecv += int64(len(e.data))
	p.stats.MsgsRecv++
	if tr := p.world.trace; tr != nil {
		tr.add(TraceEvent{Rank: p.rank, Kind: EventRecv, Start: before, End: sc.st, Peer: e.src, Bytes: len(e.data), Tag: e.tag})
	}
	if rec := p.world.rec; rec != nil {
		wall := rec.NowNS()
		rec.Emit(p.rank, trace.Event{
			Rank: int32(p.rank), Kind: trace.KindRecv, Peer: int32(e.src),
			Tag: int32(e.tag), Ctx: e.ctx, Bytes: int64(len(e.data)),
			Start: before, End: sc.st, WallStart: wall, WallEnd: wall,
		})
	}
	if s.kind == nbRecvReduce {
		reduceLenCheck(sc.opName, len(e.data), len(sc.buf))
		sc.op(sc.buf, e.data)
		e.data = nil
		releaseEnvelope(e)
		return
	}
	// nbRecvBuf: retain the payload as the new schedule buffer,
	// copy-on-retain for pooled backing (see bufpool.go).
	data := e.data
	if e.pbuf != nil {
		data = append([]byte(nil), e.data...)
	}
	e.data = nil
	releaseEnvelope(e)
	sc.buf = data
}

// wait executes the remaining schedule steps in order, blocking for
// receive steps the engine has not claimed yet, and absorbs the final
// cursor into the rank's clock. The cursor first rises to the rank's
// current time: steps that have not run yet cannot predate the Wait.
func (sc *nbSched) wait(c *Comm) []byte {
	p := c.p
	if now := p.clock.Now(); now > sc.st {
		sc.st = now
	}
	for sc.next < len(sc.steps) {
		s := &sc.steps[sc.next]
		if s.kind == nbSendBuf {
			sc.execSend(c, s)
		} else {
			e := s.env
			s.env = nil
			if e == nil {
				e = c.mboxGet("coll", c.sel(s.peer, sc.tag), c.collWatch())
			}
			sc.execRecv(c, s, e)
		}
		sc.next++
	}
	p.clock.AbsorbAtLeast(sc.st)
	return sc.buf
}

// tryFinish executes as many remaining steps as possible without
// blocking and reports whether the schedule completed; on completion the
// rank's clock absorbs the cursor. Called by Test.
func (sc *nbSched) tryFinish(c *Comm) bool {
	p := c.p
	if now := p.clock.Now(); now > sc.st {
		sc.st = now
	}
	for sc.next < len(sc.steps) {
		s := &sc.steps[sc.next]
		switch {
		case s.kind == nbSendBuf:
			sc.execSend(c, s)
		case s.env != nil:
			e := s.env
			s.env = nil
			sc.execRecv(c, s, e)
		default:
			return false
		}
		sc.next++
	}
	p.clock.AbsorbAtLeast(sc.st)
	return true
}
