package mpi

// Equivalence suite for the nonblocking layer: a blocking Send/Recv
// program and its nonblocking mirror must be indistinguishable — the
// received bytes AND every rank's final virtual clock, bit for bit.
//
// "Mirror" means the blocking op order is preserved: Send ≡ Isend
// completed immediately (Isend;Wait), Recv ≡ Irecv;Wait. That is the
// strongest claim that can hold: posting both requests and waiting later
// legitimately finishes EARLIER (that is the entire point of overlap), so
// the post-early variant below asserts payload equality only. Test and
// WaitAny are documented wall-sensitive and are excluded from clock
// identity (see Request.Test).

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/vclock"
)

type nbMode int

const (
	nbBlocking  nbMode = iota // Send / Recv
	nbMirror                  // Isend;Wait / Irecv;Wait — same op order
	nbPostEarly               // Irecv first, Isend, Wait both at the end
)

func (m nbMode) String() string {
	return [...]string{"blocking", "mirror", "postearly"}[m]
}

// nbEquivSizes covers the message-size edge cases: empty, one byte, an
// odd size straddling no alignment, and a large multi-frame payload.
var nbEquivSizes = []int{0, 1, 37, 1 << 16}

// nbTransports names the two wirings a world can use.
var nbTransports = []string{"inprocess", "tcp"}

// nbWorld builds a fresh world of n ranks on the named transport,
// optionally with a deterministic single-frame link drop (the first
// attempt of frame seq 1 from rank 0 towards rank 1) and retransmission
// armed. The filter is pure in its arguments, so every schedule replays
// the identical fault.
func nbWorld(t *testing.T, n int, transport string, filtered bool) *World {
	t.Helper()
	c := testCluster(n)
	var w *World
	switch transport {
	case "inprocess":
		w = NewWorld(c, OneProcessPerMachine(c))
	case "tcp":
		tw, closeT, err := NewWorldTCPOpts(c, OneProcessPerMachine(c), TCPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = closeT() })
		w = tw
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	if filtered {
		w.SetLinkFilter(func(src, dst int, at vclock.Time, seq int64, attempt int) LinkOutcome {
			return LinkOutcome{Drop: src == 0 && dst == 1 && seq == 1 && attempt == 0}
		})
		w.SetRetransmit(DefaultRetryPolicy())
	}
	return w
}

// nbRingRun shifts one patterned message per round around the ring
// (rank → rank+1), one round per entry of nbEquivSizes, and returns each
// rank's received bytes (rounds concatenated) and final virtual clock.
// n == 1 is the degenerate ring: no communication, clocks untouched.
func nbRingRun(w *World, n int, mode nbMode) (data [][]byte, clocks []vclock.Time, err error) {
	data = make([][]byte, n)
	clocks = make([]vclock.Time, n)
	payload := func(rank, round, size int) []byte {
		out := make([]byte, size)
		for i := range out {
			out[i] = byte(rank*17 + round*5 + i)
		}
		return out
	}
	err = w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		r := p.Rank()
		next, prev := (r+1)%n, (r+n-1)%n
		var got bytes.Buffer
		if n > 1 {
			for round, size := range nbEquivSizes {
				out := payload(r, round, size)
				switch mode {
				case nbBlocking:
					comm.Send(next, round, out)
					in, _ := comm.Recv(prev, round)
					got.Write(in)
				case nbMirror:
					sr := comm.Isend(next, round, out)
					sr.Wait()
					rr := comm.Irecv(prev, round)
					in, _ := rr.Wait()
					got.Write(in)
				case nbPostEarly:
					rr := comm.Irecv(prev, round)
					sr := comm.Isend(next, round, out)
					in, _ := rr.Wait()
					sr.Wait()
					got.Write(in)
				}
			}
		}
		data[r] = got.Bytes()
		clocks[r] = p.clock.Now()
		return nil
	})
	return data, clocks, err
}

// runNBEquiv asserts blocking ≡ mirror (payloads and clocks bit-identical)
// and blocking ≡ post-early (payloads only, clocks no later) on both
// transports at world size n. Each schedule gets a fresh world so the
// virtual clocks start from zero.
func runNBEquiv(t *testing.T, n int, filtered bool) {
	t.Helper()
	type result struct {
		data   [][]byte
		clocks []vclock.Time
	}
	for _, transport := range nbTransports {
		t.Run(fmt.Sprintf("%s/n%d", transport, n), func(t *testing.T) {
			results := map[nbMode]result{}
			for _, mode := range []nbMode{nbBlocking, nbMirror, nbPostEarly} {
				w := nbWorld(t, n, transport, filtered)
				data, clocks, err := nbRingRun(w, n, mode)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if filtered {
					if st := w.LinkStatsSnapshot()[[2]int{0, 1}]; st.Drops == 0 {
						t.Fatalf("%v: seeded single-frame drop never engaged", mode)
					}
				}
				results[mode] = result{data, clocks}
			}
			ref := results[nbBlocking]
			for _, mode := range []nbMode{nbMirror, nbPostEarly} {
				got := results[mode]
				for r := 0; r < n; r++ {
					if !bytes.Equal(got.data[r], ref.data[r]) {
						t.Errorf("%v: rank %d payload differs from blocking", mode, r)
					}
				}
			}
			// Clock identity holds for the mirror only; post-early may
			// (and should) finish no later.
			for r := 0; r < n; r++ {
				if results[nbMirror].clocks[r] != ref.clocks[r] {
					t.Errorf("mirror: rank %d clock %v != blocking %v", r, results[nbMirror].clocks[r], ref.clocks[r])
				}
				if results[nbPostEarly].clocks[r] > ref.clocks[r] {
					t.Errorf("postearly: rank %d clock %v exceeds blocking %v", r, results[nbPostEarly].clocks[r], ref.clocks[r])
				}
			}
		})
	}
}

// TestNonblockingEquivalence: every world size 1..9, both transports,
// perfect links.
func TestNonblockingEquivalence(t *testing.T) {
	for n := 1; n <= 9; n++ {
		runNBEquiv(t, n, false)
	}
}

// TestNonblockingEquivalenceUnderDrop repeats the suite with a
// deterministic single-frame link drop and retransmission enabled: the
// recovery path must preserve the equivalence too.
func TestNonblockingEquivalenceUnderDrop(t *testing.T) {
	for _, n := range []int{2, 3, 9} {
		runNBEquiv(t, n, true)
	}
}
