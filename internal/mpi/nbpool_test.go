package mpi

import (
	"fmt"
	"testing"
)

// Pooled-payload ownership under nonblocking receives: an envelope the
// progress engine has claimed for a posted Irecv must keep its pooled
// payload until Wait consumes it. The tests below flood the buffer pool
// with unrelated traffic while claimed envelopes sit unconsumed; a
// premature recycle would hand those bytes to the churn messages and
// corrupt the patterns (and trip the race detector on the TCP path).
// They guard the copy-on-retain discipline that keeps the wire path at
// its low allocs/op without giving callers aliased pool memory.

const (
	nbPoolMsgs  = 8    // patterned messages held pending
	nbPoolChurn = 64   // pool-churning ping-pongs while they pend
	nbPoolSize  = 8192 // payload size, comfortably pool-backed
	nbPoolTag   = 100  // patterned tags start here; churn uses tag 0
)

// nbPoolPattern fills a payload deterministically per message index.
func nbPoolPattern(i int) []byte {
	data := make([]byte, nbPoolSize)
	for j := range data {
		data[j] = byte(i*31 + j)
	}
	return data
}

// runIrecvOwnership drives one world: rank 0 posts Irecvs for the
// patterned tags, both ranks churn the pool with blocking ping-pongs on
// a disjoint tag (arrived pattern envelopes get claimed — but not
// consumed — by the engine on those calls), then rank 0 Waits each
// request and verifies every byte.
func runIrecvOwnership(t *testing.T, w *World) {
	t.Helper()
	err := w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		churn := make([]byte, nbPoolSize)
		for j := range churn {
			churn[j] = 0xEE
		}
		if p.Rank() == 0 {
			reqs := make([]*Request, nbPoolMsgs)
			for i := range reqs {
				reqs[i] = comm.Irecv(1, nbPoolTag+i)
			}
			for i := 0; i < nbPoolChurn; i++ {
				comm.Recv(1, 0)
				comm.Send(1, 0, churn)
			}
			for i, r := range reqs {
				data, st := r.Wait()
				want := nbPoolPattern(i)
				if len(data) != len(want) {
					return fmt.Errorf("req %d: got %d bytes, want %d", i, len(data), len(want))
				}
				for j := range data {
					if data[j] != want[j] {
						return fmt.Errorf("req %d: byte %d corrupted: got %#x want %#x (pooled payload recycled while request pending?)", i, j, data[j], want[j])
					}
				}
				if st.Tag != nbPoolTag+i {
					return fmt.Errorf("req %d: status tag %d, want %d", i, st.Tag, nbPoolTag+i)
				}
			}
		} else {
			for i := 0; i < nbPoolMsgs; i++ {
				comm.Send(0, nbPoolTag+i, nbPoolPattern(i))
			}
			for i := 0; i < nbPoolChurn; i++ {
				comm.Send(0, 0, churn)
				comm.Recv(0, 0)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvPooledOwnershipInProcess(t *testing.T) {
	c := testCluster(2)
	runIrecvOwnership(t, NewWorld(c, OneProcessPerMachine(c)))
}

func TestIrecvPooledOwnershipTCP(t *testing.T) {
	c := testCluster(2)
	w, closeT, err := NewWorldTCPOpts(c, OneProcessPerMachine(c), TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = closeT() }()
	runIrecvOwnership(t, w)
}

// BenchmarkTCPPingPongNonblocking mirrors BenchmarkTCPPingPong's pooled
// row through Isend/Irecv+Wait: the nonblocking wrapper may add only the
// Request objects on top of the wire path's allocs/op budget.
func BenchmarkTCPPingPongNonblocking(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			w, closeT := benchWorldTCP(b, 2)
			defer closeT()
			b.ReportAllocs()
			b.ResetTimer()
			err := w.Run(func(p *Proc) error {
				data := make([]byte, size)
				comm := p.CommWorld()
				for i := 0; i < b.N; i++ {
					if p.Rank() == 0 {
						sr := comm.Isend(1, 0, data)
						rr := comm.Irecv(1, 0)
						sr.Wait()
						rr.Wait()
					} else {
						rr := comm.Irecv(0, 0)
						rr.Wait()
						sr := comm.Isend(0, 0, data)
						sr.Wait()
					}
				}
				return nil
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
