package mpi

import (
	"fmt"
	"sync"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Wildcards for Recv and Probe, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// envelope is one in-flight message.
type envelope struct {
	ctx    int64 // communicator context id
	src    int   // world rank of the sender
	tag    int
	data   []byte
	arrive vclock.Time // virtual time the last byte reaches the receiver
	seq    int64       // per-sender sequence, for deterministic tie-breaks
	order  int64       // mailbox enqueue order; earliest queued wins wildcards
	pbuf   *poolBuf    // non-nil when data is pool-backed (copy-on-retain)
}

// mbKey indexes a mailbox bucket: every queued message lives in the FIFO
// of its (communicator context, sender) pair.
type mbKey struct {
	ctx int64
	src int // world rank of the sender
}

// recvSel describes what a receive or probe accepts: one context, a
// single source (world rank) or a candidate set, and a tag or AnyTag.
type recvSel struct {
	ctx  int64
	src  int   // world rank, or AnySource
	tag  int   // or AnyTag
	srcs []int // candidate world ranks when src == AnySource
}

// matchesTag reports whether the selector accepts a message tag. AnyTag
// matches every application tag but never an internal (negative) one:
// the collective machinery owns the negative tag space, and the progress
// engine matches posted wildcard receives eagerly, so a wildcard that
// accepted internal tags could steal a collective's message.
func (s recvSel) matchesTag(tag int) bool {
	if s.tag == AnyTag {
		return tag >= 0
	}
	return tag == s.tag
}

// mailbox holds the messages addressed to one process that no receive has
// consumed yet, indexed by (context, sender) so a directed receive
// inspects one short per-pair FIFO instead of scanning the whole backlog.
// put/get form the only cross-goroutine interaction in the simulation.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      map[mbKey][]*envelope
	closed bool
	kind   FailureKind // why the owner failed, for error reporting
	owner  int         // world rank, for failure reporting
	enq    int64       // monotone enqueue counter; stamps envelope.order

	// maxSeq, when non-nil, records the highest sender sequence consumed
	// per source: the duplicate-suppression window of the reliable
	// delivery path. Per-sender sequences arrive monotonically (in-process
	// delivery is synchronous with the send, the TCP transport is FIFO per
	// connection), so a frame whose sequence does not advance the high
	// mark is a duplicate injected on the wire. Enabled only when a link
	// filter is installed; without one sequences always advance and the
	// map would never fire.
	maxSeq map[int]int64
}

func (m *mailbox) init() {
	m.cond = sync.NewCond(&m.mu)
	m.q = make(map[mbKey][]*envelope)
}

// enableDedupe arms duplicate suppression; called before Run when a link
// filter (which may duplicate frames) is installed.
func (m *mailbox) enableDedupe() {
	m.mu.Lock()
	if m.maxSeq == nil {
		m.maxSeq = make(map[int]int64)
	}
	m.mu.Unlock()
}

func (m *mailbox) put(e *envelope) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		releaseEnvelope(e) // message to a failed process disappears
		return
	}
	if m.maxSeq != nil && e.seq > 0 {
		if last, ok := m.maxSeq[e.src]; ok && e.seq <= last {
			m.mu.Unlock()
			releaseEnvelope(e) // duplicate frame suppressed
			return
		}
		m.maxSeq[e.src] = e.seq
	}
	e.order = m.enq
	m.enq++
	k := mbKey{ctx: e.ctx, src: e.src}
	m.q[k] = append(m.q[k], e)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// locate returns the bucket and index of the earliest-queued envelope the
// selector accepts. Buckets are FIFO, so within one bucket the first tag
// match is the earliest; across buckets the enqueue order decides, which
// preserves the pre-indexing semantics (earliest queued wins, so
// per-sender delivery stays non-overtaking). Called with m.mu held.
func (m *mailbox) locate(sel recvSel) (mbKey, int, bool) {
	if sel.src != AnySource {
		k := mbKey{ctx: sel.ctx, src: sel.src}
		for i, e := range m.q[k] {
			if sel.matchesTag(e.tag) {
				return k, i, true
			}
		}
		return mbKey{}, 0, false
	}
	var bestK mbKey
	bestI := -1
	var bestOrder int64
	for _, src := range sel.srcs {
		k := mbKey{ctx: sel.ctx, src: src}
		for i, e := range m.q[k] {
			if !sel.matchesTag(e.tag) {
				continue
			}
			if bestI < 0 || e.order < bestOrder {
				bestK, bestI, bestOrder = k, i, e.order
			}
			break // FIFO bucket: later entries are younger
		}
	}
	if bestI < 0 {
		return mbKey{}, 0, false
	}
	return bestK, bestI, true
}

// pop removes and returns the envelope at (k, i). Called with m.mu held.
func (m *mailbox) pop(k mbKey, i int) *envelope {
	q := m.q[k]
	e := q[i]
	copy(q[i:], q[i+1:])
	q[len(q)-1] = nil
	m.q[k] = q[:len(q)-1]
	return e
}

// get blocks until a message matching the selector is present, removes it
// from its queue and returns it. Among simultaneously queued matches the
// earliest queued wins, which preserves per-sender FIFO (non-overtaking).
// giveUp is re-checked whenever the mailbox wakes (failure and revocation
// notifications broadcast to all mailboxes); a non-nil return panics with
// that error.
func (m *mailbox) get(sel recvSel, giveUp func() error) *envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if k, i, ok := m.locate(sel); ok {
			return m.pop(k, i)
		}
		if m.closed {
			panic(&ProcessFailedError{Rank: m.owner, Kind: m.kind})
		}
		if giveUp != nil {
			if err := giveUp(); err != nil {
				panic(err)
			}
		}
		m.cond.Wait()
	}
}

// notify wakes all waiters so they can re-evaluate giveUp conditions.
func (m *mailbox) notify() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// peek blocks until a matching message is present and returns it without
// removing it from the queue.
func (m *mailbox) peek(sel recvSel, giveUp func() error) *envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if k, i, ok := m.locate(sel); ok {
			return m.q[k][i]
		}
		if m.closed {
			panic(&ProcessFailedError{Rank: m.owner, Kind: m.kind})
		}
		if giveUp != nil {
			if err := giveUp(); err != nil {
				panic(err)
			}
		}
		m.cond.Wait()
	}
}

// tryGet is the non-blocking variant of get; peek leaves the message queued.
func (m *mailbox) tryGet(sel recvSel, peek bool) *envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, i, ok := m.locate(sel)
	if !ok {
		return nil
	}
	if peek {
		return m.q[k][i]
	}
	return m.pop(k, i)
}

// seqSnapshot returns the current enqueue count: the wait loops of the
// progress engine snapshot it before a matching attempt, so an arrival
// racing the attempt is never slept through (see awaitArrival).
func (m *mailbox) seqSnapshot() int64 {
	m.mu.Lock()
	n := m.enq
	m.mu.Unlock()
	return n
}

// awaitArrival blocks until the enqueue counter moves past seen — some
// message, not necessarily a matching one, arrived after the snapshot was
// taken — or the owner fails, or giveUp reports an error. Like get,
// failure surfaces by panic; the caller re-runs its matching attempt on
// return. Wakeups without an enqueue (failure notifications broadcast to
// all mailboxes) re-check the abort conditions and sleep again.
func (m *mailbox) awaitArrival(seen int64, giveUp func() error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.enq == seen {
		if m.closed {
			panic(&ProcessFailedError{Rank: m.owner, Kind: m.kind})
		}
		if giveUp != nil {
			if err := giveUp(); err != nil {
				panic(err)
			}
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close(kind FailureKind) {
	m.mu.Lock()
	m.closed = true
	m.kind = kind
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Status describes a received or probed message.
type Status struct {
	Source int // rank of the sender within the communicator
	Tag    int
	Bytes  int
}

// checkRank panics if rank is not a valid comm rank.
func (c *Comm) checkRank(op string, rank int) {
	if rank < 0 || rank >= len(c.s.members) {
		panic(fmt.Sprintf("mpi: %s: rank %d out of range [0,%d)", op, rank, len(c.s.members)))
	}
}

// sendCommon computes the timing of a transfer anchored at the process
// clock, advances the clock by the sender-side overhead and enqueues the
// envelope. It returns the virtual time at which the sender's interface
// finishes the transfer. When copyBuf is false the caller cedes ownership
// of data.
func (c *Comm) sendCommon(dst, tag int, data []byte, copyBuf bool) vclock.Time {
	c.p.progress()
	end, _ := c.sendCore(dst, tag, data, copyBuf, c.p.clock.Now(), &c.p.clock)
	return end
}

// sendCore computes the timing of a transfer anchored at start — which
// need not be the process clock: nonblocking collective schedules anchor
// steps at their own virtual cursor — and enqueues the envelope. It
// returns the time the sender's interface finishes the transfer and the
// time the sender-side CPU is released (start plus the link overhead).
// When clk is non-nil it is advanced by the overhead exactly where the
// blocking path always did, so blocking timing is preserved bit for bit;
// schedule steps pass nil and account on their cursor instead.
func (c *Comm) sendCore(dst, tag int, data []byte, copyBuf bool, start vclock.Time, clk *vclock.Clock) (end, cpuFree vclock.Time) {
	c.checkRank("Send", dst)
	p := c.p
	p.opTick()
	dstW := c.s.members[dst]
	if p.world.ctxRevoked(c.s.id) {
		panic(&RevokedError{Ctx: c.s.id})
	}
	if p.world.IsFailed(dstW) {
		panic(p.world.failedError(dstW))
	}
	link := p.world.cluster.Link(p.machine, p.world.place[dstW])
	if clk != nil {
		clk.Advance(vclock.Time(link.Overhead))
		cpuFree = clk.Now()
	} else {
		cpuFree = start + vclock.Time(link.Overhead)
	}
	_, end = p.nicOut.Reserve(cpuFree, vclock.Time(link.TransferTime(len(data))))
	buf := data
	// Buffered send: the sender may reuse data as soon as the call
	// returns. The wire transport serialises the payload into a frame
	// before deliver returns, so the defensive copy is needed only on the
	// in-process path (and for wire self-delivery, which has no wire).
	if copyBuf && (!p.world.wireTransport || dstW == p.rank) {
		buf = append([]byte(nil), data...)
	}
	p.reqSeq++
	env := getEnv()
	env.ctx = c.s.id
	env.src = p.rank
	env.tag = tag
	env.data = buf
	env.arrive = end + vclock.Time(link.Latency)
	env.seq = p.reqSeq
	p.stats.BytesSent += int64(len(data))
	p.stats.MsgsSent++
	if tr := p.world.trace; tr != nil {
		tr.add(TraceEvent{Rank: p.rank, Kind: EventSend, Start: start, End: end, Peer: dstW, Bytes: len(data), Tag: tag})
	}
	if r := p.world.rec; r != nil {
		wall := r.NowNS()
		r.Emit(p.rank, trace.Event{
			Rank: int32(p.rank), Kind: trace.KindSend, Peer: int32(dstW),
			Tag: int32(tag), Ctx: c.s.id, Bytes: int64(len(data)),
			Start: start, End: end, WallStart: wall, WallEnd: wall,
		})
	}
	if p.world.linkFilter != nil && dstW != p.rank {
		// Chaos-adjudicated path: the frame may be delayed, duplicated or
		// dropped (and then retransmitted) before it reaches the wire.
		p.transmitFiltered(dstW, env, link, end)
		return end, cpuFree
	}
	p.world.deliver(dstW, env)
	return end, cpuFree
}

// Send performs a blocking standard-mode send of data to the process with
// communicator rank dst. The send buffers internally, so Send never waits
// for a matching receive; the sender's clock advances by the message
// overhead plus its interface's serialisation of the transfer.
func (c *Comm) Send(dst, tag int, data []byte) {
	end := c.sendCommon(dst, tag, data, true)
	c.p.clock.AbsorbAtLeast(end)
}

// SendOwned is Send without the defensive copy: the caller cedes ownership
// of data and must not modify it afterwards. Use it on hot paths that send
// many freshly built (or immutable) buffers.
func (c *Comm) SendOwned(dst, tag int, data []byte) {
	end := c.sendCommon(dst, tag, data, false)
	c.p.clock.AbsorbAtLeast(end)
}

// sel builds the mailbox selector for a receive or probe on this
// communicator. AnySource receives accept any current member as sender.
func (c *Comm) sel(src, tag int) recvSel {
	if src == AnySource {
		return recvSel{ctx: c.s.id, src: AnySource, tag: tag, srcs: c.s.members}
	}
	c.checkRank("Recv", src)
	return recvSel{ctx: c.s.id, src: c.s.members[src], tag: tag}
}

// failWatch returns the give-up predicate for a receive from src: if the
// awaited sender fails while we are blocked — or the communicator is
// revoked — the receive aborts with an error instead of hanging. AnySource
// receives cannot name a single awaited sender; they abort only when every
// other member of the communicator has failed.
func (c *Comm) failWatch(src int) func() error {
	w := c.p.world
	id := c.s.id
	if src == AnySource {
		members := c.s.members
		me := c.p.rank
		return func() error {
			if w.ctxRevoked(id) {
				return &RevokedError{Ctx: id}
			}
			failed := -1
			for _, r := range members {
				if r == me {
					continue
				}
				if !w.IsFailed(r) {
					return nil
				}
				failed = r
			}
			if failed < 0 {
				return nil
			}
			return w.failedError(failed)
		}
	}
	srcW := c.s.members[src]
	return func() error {
		if w.ctxRevoked(id) {
			return &RevokedError{Ctx: id}
		}
		if w.IsFailed(srcW) {
			return w.failedError(srcW)
		}
		return nil
	}
}

// collWatch is the give-up predicate for collective operations: a
// collective over a communicator cannot complete once any member has
// failed (the communication tree is broken somewhere), so it aborts as
// soon as any member is failed or the communicator is revoked — not just
// the direct peer, which is what keeps survivors that were waiting on
// still-alive neighbours from hanging.
func (c *Comm) collWatch() func() error {
	w := c.p.world
	id := c.s.id
	members := c.s.members
	me := c.p.rank
	return func() error {
		if w.ctxRevoked(id) {
			return &RevokedError{Ctx: id}
		}
		for _, r := range members {
			if r != me && w.IsFailed(r) {
				return w.failedError(r)
			}
		}
		return nil
	}
}

// collCheck aborts a collective at entry if a member is already failed or
// the communicator is revoked, so every survivor reports the failure even
// when its own part of the communication tree would not have touched the
// failed process.
func (c *Comm) collCheck() {
	if err := c.collWatch()(); err != nil {
		panic(err)
	}
}

// collRecv is the failure-aware receive used inside collectives. The
// returned payload is retained by the caller.
func (c *Comm) collRecv(src, tag int) []byte {
	t0 := c.p.clock.Now()
	e := c.mboxGet("coll", c.sel(src, tag), c.collWatch())
	data, _ := c.consume(e, t0)
	return data
}

// collGetAny blocks for a message carrying tag from any of the given
// world ranks and returns the raw envelope WITHOUT applying receive
// timing. Collective root drains use it to take messages as they arrive
// and fold the timing in rank order afterwards, so one slow child does
// not serialise the drain while simulated times stay deterministic.
func (c *Comm) collGetAny(srcs []int, tag int) *envelope {
	return c.mboxGet("coll", recvSel{ctx: c.s.id, src: AnySource, tag: tag, srcs: srcs}, c.collWatch())
}

// collReduceRecv receives from src and folds the payload into acc with
// op, without retaining the received buffer: the low-allocation reduction
// path. opName appears in the length-mismatch panic.
func (c *Comm) collReduceRecv(src, tag int, acc []byte, op Op, opName string) {
	t0 := c.p.clock.Now()
	e := c.mboxGet("coll", c.sel(src, tag), c.collWatch())
	c.consumeWith(e, t0, func(in []byte) {
		reduceLenCheck(opName, len(in), len(acc))
		op(acc, in)
	})
}

// collSendrecv is the failure-aware combined send/receive used inside
// collectives.
func (c *Comm) collSendrecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	sreq := c.Isend(dst, sendTag, data)
	buf := c.collRecv(src, recvTag)
	sreq.Wait()
	return buf
}

// collSendrecvReduce sends out to dst and folds the message received from
// src into acc, recycling the received buffer. out may alias acc: the
// outgoing payload is captured before the reduction runs.
func (c *Comm) collSendrecvReduce(dst, sendTag int, out []byte, src, recvTag int, acc []byte, op Op, opName string) {
	sreq := c.Isend(dst, sendTag, out)
	c.collReduceRecv(src, recvTag, acc, op, opName)
	sreq.Wait()
}

// finishRecvTiming applies timing and statistics for a consumed envelope.
// t0 is the virtual time the receive was posted, used for tracing the
// waiting interval.
func (c *Comm) finishRecvTiming(e *envelope, t0 vclock.Time) Status {
	p := c.p
	p.opTick()
	link := p.world.cluster.Link(p.world.place[e.src], p.machine)
	p.clock.AbsorbAtLeast(e.arrive)
	p.clock.Advance(vclock.Time(link.Overhead))
	p.stats.BytesRecv += int64(len(e.data))
	p.stats.MsgsRecv++
	if tr := p.world.trace; tr != nil {
		tr.add(TraceEvent{Rank: p.rank, Kind: EventRecv, Start: t0, End: p.clock.Now(), Peer: e.src, Bytes: len(e.data), Tag: e.tag})
	}
	if r := p.world.rec; r != nil {
		wall := r.NowNS()
		var anySrc int64
		if p.lastRecvAnySrc {
			anySrc = 1
		}
		r.Emit(p.rank, trace.Event{
			Rank: int32(p.rank), Kind: trace.KindRecv, Peer: int32(e.src),
			Tag: int32(e.tag), Ctx: e.ctx, Bytes: int64(len(e.data)),
			Start: t0, End: p.clock.Now(), WallStart: wall, WallEnd: wall,
			A1: anySrc,
		})
	}
	return Status{Source: c.s.rankOf(e.src), Tag: e.tag, Bytes: len(e.data)}
}

// consume applies receive timing for e and transfers its payload to the
// caller. Pool-backed payloads are copied out and recycled
// (copy-on-retain); everything else is handed over as-is. The envelope is
// recycled and must not be touched afterwards.
func (c *Comm) consume(e *envelope, t0 vclock.Time) ([]byte, Status) {
	st := c.finishRecvTiming(e, t0)
	data := e.data
	if e.pbuf != nil {
		data = append([]byte(nil), e.data...)
	}
	e.data = nil
	releaseEnvelope(e)
	return data, st
}

// consumeWith applies receive timing for e, hands the payload to fn for
// in-place use, then recycles payload and envelope without copying: the
// scratch path for consumers that fold the payload into an accumulator
// and do not retain it. fn must not keep a reference to its argument.
func (c *Comm) consumeWith(e *envelope, t0 vclock.Time, fn func(in []byte)) Status {
	st := c.finishRecvTiming(e, t0)
	fn(e.data)
	e.data = nil
	releaseEnvelope(e)
	return st
}

// Recv blocks until a message from src with the given tag arrives (src may
// be AnySource and tag AnyTag) and returns its payload. Messages between
// one sender/receiver pair are non-overtaking. When an earlier-posted
// Irecv could match the same envelopes the receive routes through the
// progress engine, so posting order — not wakeup order — decides which
// operation gets which message.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	p := c.p
	s := c.sel(src, tag)
	if p.eng.overlaps(c.s.id, s) {
		return c.recvViaEngine(s, src == AnySource)
	}
	t0 := p.clock.Now()
	p.progress()
	e := c.mboxGet("recv", s, c.failWatch(src))
	return c.consume(e, t0)
}

// Probe blocks until a matching message is available without receiving it.
func (c *Comm) Probe(src, tag int) Status {
	c.p.progress()
	e := c.p.mbox.peek(c.sel(src, tag), c.failWatch(src))
	return Status{Source: c.s.rankOf(e.src), Tag: e.tag, Bytes: len(e.data)}
}

// Iprobe reports whether a matching message is available.
func (c *Comm) Iprobe(src, tag int) (bool, Status) {
	c.p.progress()
	e := c.p.mbox.tryGet(c.sel(src, tag), true)
	if e == nil {
		return false, Status{}
	}
	return true, Status{Source: c.s.rankOf(e.src), Tag: e.tag, Bytes: len(e.data)}
}

// Sendrecv sends to dst and receives from src in one combined operation,
// overlapping the two transfers as MPI_Sendrecv does.
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, Status) {
	sreq := c.Isend(dst, sendTag, data)
	buf, st := c.Recv(src, recvTag) //hmpivet:ignore tagconst -- forwarding the caller's two tags is the operation itself
	sreq.Wait()
	return buf, st
}
