package mpi

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/hnoc"
	"repro/internal/vclock"
)

// testCluster returns a small cluster with easy-to-check timing: machine i
// has speed 10*(i+1); remote links are 1 MB/s with 1 ms latency and no
// overhead; local links are 100 MB/s with zero latency.
func testCluster(n int) *hnoc.Cluster {
	c := &hnoc.Cluster{
		Remote: hnoc.LinkSpec{Protocol: hnoc.ProtoTCP, Latency: 1e-3, Bandwidth: 1e6},
		Local:  hnoc.LinkSpec{Protocol: hnoc.ProtoSHM, Latency: 0, Bandwidth: 100e6},
	}
	for i := 0; i < n; i++ {
		c.Machines = append(c.Machines, hnoc.Machine{
			Name:  fmt.Sprintf("m%d", i),
			Speed: 10 * float64(i+1),
		})
	}
	return c
}

func newTestWorld(t *testing.T, n int) *World {
	t.Helper()
	c := testCluster(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewWorld(c, OneProcessPerMachine(c))
}

func runWorld(t *testing.T, w *World, main func(p *Proc) error) {
	t.Helper()
	if err := w.Run(main); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 0:
			comm.Send(1, 7, []byte("hello"))
		case 1:
			data, st := comm.Recv(0, 7)
			if string(data) != "hello" {
				return fmt.Errorf("got %q", data)
			}
			if st.Source != 0 || st.Tag != 7 || st.Bytes != 5 {
				return fmt.Errorf("bad status %+v", st)
			}
		}
		return nil
	})
}

func TestSendBuffersData(t *testing.T) {
	// The sender may overwrite its buffer immediately after Send returns.
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			buf := []byte{1, 2, 3}
			comm.Send(1, 0, buf)
			buf[0] = 99
			comm.Send(1, 0, buf)
		} else {
			a, _ := comm.Recv(0, 0)
			b, _ := comm.Recv(0, 0)
			if a[0] != 1 || b[0] != 99 {
				return fmt.Errorf("buffering broken: %v %v", a, b)
			}
		}
		return nil
	})
}

func TestRecvWildcards(t *testing.T) {
	w := newTestWorld(t, 3)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 1:
			comm.Send(0, 5, []byte("from1"))
		case 2:
			comm.Send(0, 6, []byte("from2"))
		case 0:
			// AnyTag from a specific source.
			d1, st1 := comm.Recv(1, AnyTag)
			if string(d1) != "from1" || st1.Tag != 5 {
				return fmt.Errorf("AnyTag recv got %q tag %d", d1, st1.Tag)
			}
			// AnySource with a specific tag.
			d2, st2 := comm.Recv(AnySource, 6)
			if string(d2) != "from2" || st2.Source != 2 {
				return fmt.Errorf("AnySource recv got %q src %d", d2, st2.Source)
			}
		}
		return nil
	})
}

func TestNonOvertakingSameSender(t *testing.T) {
	w := newTestWorld(t, 2)
	const n = 50
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				comm.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				data, _ := comm.Recv(0, 3)
				if data[0] != byte(i) {
					return fmt.Errorf("message %d overtaken by %d", i, data[0])
				}
			}
		}
		return nil
	})
}

func TestTagSelectionOutOfOrder(t *testing.T) {
	// A receive for tag B must skip an earlier-queued tag-A message.
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Send(1, 1, []byte("first"))
			comm.Send(1, 2, []byte("second"))
		} else {
			d2, _ := comm.Recv(0, 2)
			d1, _ := comm.Recv(0, 1)
			if string(d2) != "second" || string(d1) != "first" {
				return fmt.Errorf("tag matching broken: %q %q", d2, d1)
			}
		}
		return nil
	})
}

func TestIsendIrecvWait(t *testing.T) {
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			r1 := comm.Isend(1, 1, []byte("a"))
			r2 := comm.Isend(1, 2, []byte("b"))
			WaitAll([]*Request{r1, r2})
		} else {
			r2 := comm.Irecv(0, 2)
			r1 := comm.Irecv(0, 1)
			d2, st2 := r2.Wait()
			d1, st1 := r1.Wait()
			if string(d1) != "a" || string(d2) != "b" {
				return fmt.Errorf("got %q %q", d1, d2)
			}
			if st1.Tag != 1 || st2.Tag != 2 {
				return fmt.Errorf("tags %d %d", st1.Tag, st2.Tag)
			}
		}
		return nil
	})
}

func TestRequestTest(t *testing.T) {
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Send(1, 9, []byte("x"))
		} else {
			req := comm.Irecv(0, 9)
			// Spin until Test succeeds (message will arrive).
			for {
				ok, data, st := req.Test()
				if ok {
					if string(data) != "x" || st.Tag != 9 {
						return fmt.Errorf("Test returned %q %+v", data, st)
					}
					break
				}
			}
			// A second Wait returns the same payload.
			data, _ := req.Wait()
			if string(data) != "x" {
				return fmt.Errorf("Wait after Test returned %q", data)
			}
		}
		return nil
	})
}

func TestProbeAndIprobe(t *testing.T) {
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Send(1, 4, []byte("abc"))
		} else {
			st := comm.Probe(AnySource, AnyTag)
			if st.Bytes != 3 || st.Source != 0 || st.Tag != 4 {
				return fmt.Errorf("Probe status %+v", st)
			}
			ok, st2 := comm.Iprobe(0, 4)
			if !ok || st2.Bytes != 3 {
				return fmt.Errorf("Iprobe after Probe: %v %+v", ok, st2)
			}
			// The message is still receivable.
			data, _ := comm.Recv(0, 4)
			if string(data) != "abc" {
				return fmt.Errorf("Recv after Probe got %q", data)
			}
			// Nothing left.
			if ok, _ := comm.Iprobe(AnySource, AnyTag); ok {
				return fmt.Errorf("Iprobe found phantom message")
			}
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	w := newTestWorld(t, 4)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		n := comm.Size()
		right := (comm.Rank() + 1) % n
		left := (comm.Rank() - 1 + n) % n
		data, _ := comm.Sendrecv(right, 0, []byte{byte(comm.Rank())}, left, 0)
		if int(data[0]) != left {
			return fmt.Errorf("rank %d received %d, want %d", comm.Rank(), data[0], left)
		}
		return nil
	})
}

func TestComputeAdvancesClockBySpeed(t *testing.T) {
	w := newTestWorld(t, 2) // speeds 10 and 20
	runWorld(t, w, func(p *Proc) error {
		p.Compute(100)
		want := vclock.Time(100 / (10 * float64(p.Rank()+1)))
		if math.Abs(float64(p.Now()-want)) > 1e-12 {
			return fmt.Errorf("rank %d clock %v, want %v", p.Rank(), p.Now(), want)
		}
		return nil
	})
}

func TestMessageTimingRemoteLink(t *testing.T) {
	// 1 MB over a 1 MB/s link with 1 ms latency: receiver's clock must be
	// at least 1.001 s after the send started.
	w := newTestWorld(t, 2)
	var recvTime vclock.Time
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Send(1, 0, make([]byte, 1e6))
			// Sender is charged the serialisation: 1 s.
			if math.Abs(float64(p.Now())-1.0) > 1e-9 {
				return fmt.Errorf("sender clock %v, want 1.0", p.Now())
			}
		} else {
			comm.Recv(0, 0)
			recvTime = p.Now()
		}
		return nil
	})
	if math.Abs(float64(recvTime)-1.001) > 1e-9 {
		t.Fatalf("receiver clock %v, want 1.001", recvTime)
	}
}

func TestIsendOverlapsTransfer(t *testing.T) {
	// Isend should not charge the sender the full serialisation time.
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			req := comm.Isend(1, 0, make([]byte, 1e6))
			if p.Now() >= 1.0 {
				return fmt.Errorf("Isend charged sender %v seconds", p.Now())
			}
			p.Compute(5) // 0.5 s of useful work on machine 0 (speed 10)
			req.Wait()   // completes at transfer end: 1.0 s
			if math.Abs(float64(p.Now())-1.0) > 1e-9 {
				return fmt.Errorf("after Wait clock %v, want 1.0", p.Now())
			}
		} else {
			comm.Recv(0, 0)
		}
		return nil
	})
}

func TestSenderNICSerialisesFanout(t *testing.T) {
	// Rank 0 sends 1 MB to ranks 1..3: the third message cannot arrive
	// before 3 s + latency.
	w := newTestWorld(t, 4)
	times := make([]vclock.Time, 4)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			for dst := 1; dst <= 3; dst++ {
				comm.Isend(dst, 0, make([]byte, 1e6))
			}
		} else {
			comm.Recv(0, 0)
			times[p.Rank()] = p.Now()
		}
		return nil
	})
	for i, want := range []float64{1.001, 2.001, 3.001} {
		got := float64(times[i+1])
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("receiver %d clock %v, want %v", i+1, got, want)
		}
	}
}

func TestLocalLinkFasterThanRemote(t *testing.T) {
	// Two processes on one machine communicate over the shm link.
	c := testCluster(2)
	w := NewWorld(c, []int{0, 0}) // both on machine 0
	var recvTime vclock.Time
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Send(1, 0, make([]byte, 1e6))
		} else {
			comm.Recv(0, 0)
			recvTime = p.Now()
		}
		return nil
	})
	// 1 MB at 100 MB/s, zero latency: 10 ms.
	if math.Abs(float64(recvTime)-0.01) > 1e-9 {
		t.Fatalf("shm receive at %v, want 0.01", recvTime)
	}
}

func TestRecvWaitsForVirtualArrival(t *testing.T) {
	// Receiver that was "early" in virtual time absorbs the arrival time.
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			p.Compute(50) // 5 s on machine 0
			comm.Send(1, 0, []byte{1})
		} else {
			comm.Recv(0, 0)
			if p.Now() < 5.0 {
				return fmt.Errorf("receiver clock %v, should be >= sender's 5 s", p.Now())
			}
		}
		return nil
	})
}

func TestFailureInjection(t *testing.T) {
	w := newTestWorld(t, 2)
	w.Fail(1)
	err := w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Send(1, 0, []byte{1}) // to failed process: panics
		}
		return nil
	})
	pf, ok := err.(*ProcessFailedError)
	if !ok {
		t.Fatalf("error = %v, want *ProcessFailedError", err)
	}
	if pf.Rank != 1 {
		t.Fatalf("failed rank = %d, want 1", pf.Rank)
	}
}

func TestFailureUnblocksReceiver(t *testing.T) {
	// A process blocked in Recv on a process that fails must not hang.
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.CommWorld().Recv(1, 0)
			return nil
		}
		// Rank 1 fails itself instead of sending.
		p.world.Fail(1)
		return nil
	})
	if _, ok := err.(*ProcessFailedError); !ok {
		t.Fatalf("error = %v, want *ProcessFailedError", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic was not converted to an error")
	}
}

func TestStatsAccounting(t *testing.T) {
	w := newTestWorld(t, 2)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			p.Compute(30)
			comm.Send(1, 0, make([]byte, 1000))
		} else {
			comm.Recv(0, 0)
		}
		return nil
	})
	st := w.Stats()
	if st[0].ComputeUnits != 30 || st[0].BytesSent != 1000 || st[0].MsgsSent != 1 {
		t.Errorf("sender stats %+v", st[0])
	}
	if st[1].BytesRecv != 1000 || st[1].MsgsRecv != 1 {
		t.Errorf("receiver stats %+v", st[1])
	}
}

func TestMakespan(t *testing.T) {
	w := newTestWorld(t, 3)
	runWorld(t, w, func(p *Proc) error {
		if p.Rank() == 2 {
			p.Compute(300) // 10 s on machine 2 (speed 30)
		}
		return nil
	})
	if math.Abs(float64(w.Makespan())-10) > 1e-9 {
		t.Fatalf("makespan %v, want 10", w.Makespan())
	}
	if got := w.MakespanOf([]int{0, 1}); got != 0 {
		t.Fatalf("makespan of idle ranks = %v, want 0", got)
	}
}

func TestInvalidRankPanics(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.CommWorld().Send(5, 0, nil)
		}
		return nil
	})
	if err == nil {
		t.Fatal("Send to out-of-range rank did not error")
	}
}

func TestNewWorldValidation(t *testing.T) {
	c := testCluster(2)
	for _, bad := range [][]int{{}, {0, 5}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWorld(%v) did not panic", bad)
				}
			}()
			NewWorld(c, bad)
		}()
	}
}

func TestWaitAny(t *testing.T) {
	w := newTestWorld(t, 3)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 1:
			comm.Send(0, 1, []byte("one"))
		case 2:
			comm.Send(0, 2, []byte("two"))
		case 0:
			reqs := []*Request{comm.Irecv(1, 1), comm.Irecv(2, 2)}
			seen := map[string]bool{}
			for range reqs {
				idx, data, st := WaitAny(reqs)
				if idx < 0 || idx > 1 || st.Bytes != 3 {
					return fmt.Errorf("WaitAny idx %d status %+v", idx, st)
				}
				seen[string(data)] = true
			}
			if !seen["one"] || !seen["two"] {
				return fmt.Errorf("WaitAny results %v", seen)
			}
		}
		return nil
	})
}

func TestWaitAnyPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WaitAny(nil) did not panic")
		}
	}()
	WaitAny(nil)
}
