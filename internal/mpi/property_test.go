package mpi

// Property-based tests: the collectives must agree with their obvious
// serial reference semantics for arbitrary inputs and communicator sizes.

import (
	"testing"
	"testing/quick"
)

// worldOf builds a world of n homogeneous processes.
func worldOf(n int) *World {
	c := testCluster(n)
	return NewWorld(c, OneProcessPerMachine(c))
}

// TestAllreduceEqualsSerialFold: Allreduce(sum) equals the serial sum of
// everyone's contributions, element-wise, for random vectors and sizes.
func TestAllreduceEqualsSerialFold(t *testing.T) {
	f := func(raw []int16, sizeRaw uint8) bool {
		n := int(sizeRaw%6) + 2 // 2..7 processes
		width := len(raw)%5 + 1 // 1..5 elements
		contribs := make([][]int64, n)
		want := make([]int64, width)
		for r := 0; r < n; r++ {
			contribs[r] = make([]int64, width)
			for k := 0; k < width; k++ {
				v := int64(0)
				if len(raw) > 0 {
					v = int64(raw[(r*width+k)%len(raw)])
				}
				contribs[r][k] = v
				want[k] += v
			}
		}
		w := worldOf(n)
		ok := true
		err := w.Run(func(p *Proc) error {
			got := BytesInt64(p.CommWorld().Allreduce(Int64Bytes(contribs[p.Rank()]), SumInt64))
			for k := range want {
				if got[k] != want[k] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallIsTranspose: Alltoall is the transpose of the send matrix.
func TestAlltoallIsTranspose(t *testing.T) {
	f := func(seed uint32, sizeRaw uint8) bool {
		n := int(sizeRaw%6) + 2
		// parts[src][dst] = deterministic byte derived from seed.
		cell := func(src, dst int) byte {
			return byte(uint32(src*31+dst*7) ^ seed)
		}
		w := worldOf(n)
		ok := true
		err := w.Run(func(p *Proc) error {
			comm := p.CommWorld()
			parts := make([][]byte, n)
			for dst := 0; dst < n; dst++ {
				parts[dst] = []byte{cell(p.Rank(), dst)}
			}
			got := comm.Alltoall(parts)
			for src := 0; src < n; src++ {
				if got[src][0] != cell(src, p.Rank()) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestScanExscanConsistency: Scan(r) == op(Exscan(r), data(r)) for r > 0.
func TestScanExscanConsistency(t *testing.T) {
	f := func(raw []int16, sizeRaw uint8) bool {
		n := int(sizeRaw%6) + 2
		vals := make([]int64, n)
		for r := 0; r < n; r++ {
			if len(raw) > 0 {
				vals[r] = int64(raw[r%len(raw)])
			}
		}
		w := worldOf(n)
		ok := true
		err := w.Run(func(p *Proc) error {
			comm := p.CommWorld()
			mine := Int64Bytes([]int64{vals[p.Rank()]})
			inc := BytesInt64(comm.Scan(mine, SumInt64))[0]
			exc := comm.Exscan(mine, SumInt64)
			if p.Rank() == 0 {
				if exc != nil || inc != vals[0] {
					ok = false
				}
				return nil
			}
			if BytesInt64(exc)[0]+vals[p.Rank()] != inc {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherScatterInverse: Scatter(Gather(x)) == x.
func TestGatherScatterInverse(t *testing.T) {
	f := func(seed uint32, sizeRaw uint8) bool {
		n := int(sizeRaw%6) + 2
		mine := func(r int) []byte {
			out := make([]byte, r%3+1)
			for i := range out {
				out[i] = byte(uint32(r*13+i) ^ seed)
			}
			return out
		}
		w := worldOf(n)
		ok := true
		err := w.Run(func(p *Proc) error {
			comm := p.CommWorld()
			gathered := comm.Gather(0, mine(p.Rank()))
			back := comm.Scatter(0, gathered)
			want := mine(p.Rank())
			if len(back) != len(want) {
				ok = false
				return nil
			}
			for i := range want {
				if back[i] != want[i] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDatatypeRoundTrips: the typed codecs are inverses.
func TestDatatypeRoundTrips(t *testing.T) {
	fFloat := func(xs []float64) bool {
		got := BytesFloat64(Float64Bytes(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] && !(xs[i] != xs[i] && got[i] != got[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(fFloat, nil); err != nil {
		t.Fatal(err)
	}
	fInt := func(xs []int64) bool {
		got := BytesInt64(Int64Bytes(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fInt, nil); err != nil {
		t.Fatal(err)
	}
	fInts := func(xs []int32) bool {
		ints := make([]int, len(xs))
		for i, v := range xs {
			ints[i] = int(v)
		}
		got := BytesInts(IntsBytes(ints))
		for i := range ints {
			if got[i] != ints[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fInts, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReduceOpsAgainstReference checks each reduction operator on a
// two-element combine against plain arithmetic.
func TestReduceOpsAgainstReference(t *testing.T) {
	fl := func(a, b float64) bool {
		check := func(op Op, want float64) bool {
			buf := Float64Bytes([]float64{a})
			op(buf, Float64Bytes([]float64{b}))
			got := BytesFloat64(buf)[0]
			return got == want || (got != got && want != want)
		}
		maxv, minv := a, a
		if b > maxv {
			maxv = b
		}
		if b < minv {
			minv = b
		}
		return check(SumFloat64, a+b) && check(ProdFloat64, a*b) &&
			check(MaxFloat64, maxF(a, b)) && check(MinFloat64, minF(a, b)) || false ||
			// NaN handling differs between compare and math.Max; accept both.
			(a != a || b != b) || (check(MaxFloat64, maxv) && check(MinFloat64, minv))
	}
	if err := quick.Check(fl, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	il := func(a, b int64) bool {
		check := func(op Op, want int64) bool {
			buf := Int64Bytes([]int64{a})
			op(buf, Int64Bytes([]int64{b}))
			return BytesInt64(buf)[0] == want
		}
		maxv, minv := a, a
		if b > maxv {
			maxv = b
		}
		if b < minv {
			minv = b
		}
		return check(SumInt64, a+b) && check(MaxInt64, maxv) && check(MinInt64, minv)
	}
	if err := quick.Check(il, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
