package mpi

// Structured event recording (see internal/trace): the observability
// subsystem's view of the message-passing layer. Unlike the legacy Trace
// (trace.go), which collects flat activity intervals behind a mutex for
// the Gantt view, the Recorder shards per rank, captures collectives with
// their resolved algorithm, and feeds the exporters and analyses of the
// trace package.
//
// Every instrumentation site guards on a single nil check, so a world
// without a recorder pays no allocations and no atomic traffic — the
// acceptance bar is zero extra allocs/op on the TCP round-trip benchmark.
//
// Ownership: events carry byte counts and metadata only, never payload
// slices, so recording composes with the pooled message path
// (SetBufferPooling) — there is structurally nothing for the recorder to
// retain.

import (
	"repro/internal/trace"
	"repro/internal/vclock"
)

// SetRecorder attaches a structured event recorder to the world. Create
// it with trace.NewRecorder(world.Size(), opts) and attach before Run;
// passing nil detaches. The recorder's shards are indexed by world rank.
func (w *World) SetRecorder(r *trace.Recorder) { w.rec = r }

// Recorder returns the attached structured event recorder, or nil.
func (w *World) Recorder() *trace.Recorder { return w.rec }

// Recorder returns the recorder attached to the process's world, or nil.
// Runtime layers (internal/hmpi) use it to emit their own lifecycle
// events on this process's shard.
func (p *Proc) Recorder() *trace.Recorder { return p.world.rec }

// TraceRegionBegin opens a named application phase on this process's
// shard at the current virtual time. No-op without a recorder. Every
// begin must be matched by a TraceRegionEnd with the same name (the
// hmpivet `tracescope` analyzer flags unbalanced functions).
func (p *Proc) TraceRegionBegin(name string) {
	if r := p.world.rec; r != nil {
		r.RegionBegin(p.rank, name, p.clock.Now())
	}
}

// TraceRegionEnd closes the innermost open region with the given name and
// records the Region event. No-op without a recorder.
func (p *Proc) TraceRegionEnd(name string) {
	if r := p.world.rec; r != nil {
		r.RegionEnd(p.rank, name, p.clock.Now())
	}
}

// TracePredict records a model prediction (seconds of virtual time) for
// the named phase, to be matched against the phase's Region events by the
// predicted-vs-observed report. No-op without a recorder.
func (p *Proc) TracePredict(name string, seconds float64) {
	if r := p.world.rec; r != nil {
		r.Predict(p.rank, name, seconds, p.clock.Now())
	}
}

// RecordKill records a fault-injection kill of rank at virtual time now.
// It must be called from the goroutine running the killed rank (the chaos
// hook fires at the victim's own operation boundary, which satisfies
// this). No-op without a recorder.
func (w *World) RecordKill(rank int, now vclock.Time) {
	if r := w.rec; r != nil {
		wall := r.NowNS()
		r.Emit(rank, trace.Event{
			Rank: int32(rank), Kind: trace.KindKill, Peer: -1,
			Start: now, End: now, WallStart: wall, WallEnd: wall,
		})
	}
}

// Resolved-algorithm labels for collective events. Indexed by the
// algorithm constants so emitting sites never format strings; the
// "collective/algorithm" shape groups nicely in trace viewers.
var (
	allreduceAlgNames = [...]string{
		AllreduceRedBcast:          "allreduce/redbcast",
		AllreduceRecursiveDoubling: "allreduce/recdbl",
		AllreduceRing:              "allreduce/ring",
		AllreduceAuto:              "allreduce/auto",
		AllreduceHier:              "allreduce/hier",
	}
	reduceScatterAlgNames = [...]string{
		ReduceScatterViaRoot:  "reducescatter/viaroot",
		ReduceScatterPairwise: "reducescatter/pairwise",
		ReduceScatterAuto:     "reducescatter/auto",
		ReduceScatterHier:     "reducescatter/hier",
	}
	bcastAlgNames = [...]string{
		BcastBinomial:  "bcast/binomial",
		BcastSegmented: "bcast/segmented",
		BcastAuto:      "bcast/auto",
		BcastHier:      "bcast/hier",
	}
	gatherAlgNames = [...]string{
		GatherFlat:     "gather/flat",
		GatherBinomial: "gather/binomial",
		GatherAuto:     "gather/auto",
		GatherHier:     "gather/hier",
	}
	scatterAlgNames = [...]string{
		ScatterFlat:     "scatter/flat",
		ScatterBinomial: "scatter/binomial",
	}
)

// mboxGet is the instrumented blocking mailbox receive. kind labels the
// wait ("recv" for application point-to-point, "coll" inside collective
// algorithms). When a recorder is attached, the wait is published as a
// pending operation for the lifetime of the blocking call, so a trace
// snapshotted mid-run — after a deadlock or a hang — shows exactly what
// every rank was waiting for; hmpiverify builds its wait-for graph from
// these entries. Without a recorder the only cost over a direct
// mbox.get is one nil check and a bool store.
func (c *Comm) mboxGet(kind string, s recvSel, giveUp func() error) *envelope {
	p := c.p
	p.lastRecvAnySrc = s.src == AnySource
	r := p.world.rec
	if r == nil {
		return p.mbox.get(s, giveUp)
	}
	peer := -1
	if s.src != AnySource {
		peer = s.src
	}
	r.PendingBegin(p.rank, trace.PendingOp{
		Kind: kind, Peer: peer, Tag: s.tag, Ctx: s.ctx,
		AnySrc: s.src == AnySource, Since: float64(p.clock.Now()),
	})
	// The pop must run even when the wait aborts by panic (failed peer,
	// revoked communicator): the rank is no longer waiting on this op.
	defer r.PendingEnd(p.rank)
	return p.mbox.get(s, giveUp)
}

// collStart captures the entry timestamps of a collective when a recorder
// is attached. The idiomatic use keeps the disabled path to one nil check:
//
//	rec, t0, w0 := c.collStart()
//	... algorithm ...
//	if rec != nil { c.collEnd(name, alg, bytes, t0, w0) }
func (c *Comm) collStart() (rec *trace.Recorder, t0 vclock.Time, w0 int64) {
	rec = c.p.world.rec
	if rec != nil {
		t0, w0 = c.p.clock.Now(), rec.NowNS()
	}
	return rec, t0, w0
}

// collEnd emits the event for a completed collective. name must be a
// constant from the algorithm tables above; alg is the resolved algorithm
// code (A0), bytes the operation's local payload volume.
func (c *Comm) collEnd(name string, alg int64, bytes int, t0 vclock.Time, w0 int64) {
	r := c.p.world.rec
	r.Emit(c.p.rank, trace.Event{
		Rank: int32(c.p.rank), Kind: trace.KindColl, Peer: -1,
		Ctx: c.s.id, Bytes: int64(bytes), Name: name,
		Start: t0, End: c.p.clock.Now(),
		WallStart: w0, WallEnd: r.NowNS(),
		A0: alg,
	})
}
