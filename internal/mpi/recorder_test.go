package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// attachRecorder wires a fresh structured recorder to the world.
func attachRecorder(w *World) *trace.Recorder {
	rec := trace.NewRecorder(w.Size(), trace.Options{})
	w.SetRecorder(rec)
	return rec
}

// countKind tallies the snapshot's events of one kind, optionally
// restricted to one name.
func countKind(d *trace.Data, k trace.Kind, name string) int {
	n := 0
	for _, evs := range d.PerRank {
		for i := range evs {
			if evs[i].Kind == k && (name == "" || evs[i].Name == name) {
				n++
			}
		}
	}
	return n
}

func TestRecorderSendRecvEvents(t *testing.T) {
	w := newTestWorld(t, 2)
	rec := attachRecorder(w)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Send(1, 9, make([]byte, 2048))
		} else {
			comm.Recv(0, 9)
		}
		return nil
	})
	d := rec.Data()
	sends, recvs := 0, 0
	for _, evs := range d.PerRank {
		for _, e := range evs {
			switch e.Kind {
			case trace.KindSend:
				sends++
				if e.Rank != 0 || e.Peer != 1 || e.Tag != 9 || e.Bytes != 2048 {
					t.Errorf("send event = %+v", e)
				}
				if e.End < e.Start {
					t.Errorf("send interval inverted: %+v", e)
				}
			case trace.KindRecv:
				recvs++
				if e.Rank != 1 || e.Peer != 0 || e.Tag != 9 || e.Bytes != 2048 {
					t.Errorf("recv event = %+v", e)
				}
			}
		}
	}
	if sends != 1 || recvs != 1 {
		t.Fatalf("sends %d recvs %d, want 1/1", sends, recvs)
	}
}

// TestRecorderCollectiveAlgNames pins the contract that KindColl events
// carry the RESOLVED algorithm (name and code), not the Auto request:
// the trace must say what actually ran.
func TestRecorderCollectiveAlgNames(t *testing.T) {
	run := func(t *testing.T, tuning *CollTuning, body func(c *Comm)) *trace.Data {
		t.Helper()
		w := newTestWorld(t, 4)
		w.SetCollTuning(tuning)
		rec := attachRecorder(w)
		runWorld(t, w, func(p *Proc) error {
			body(p.CommWorld())
			return nil
		})
		return rec.Data()
	}

	t.Run("explicit", func(t *testing.T) {
		tuning := &CollTuning{
			Allreduce:     AllreduceRecursiveDoubling,
			ReduceScatter: ReduceScatterPairwise,
			Bcast:         BcastSegmented,
			Gather:        GatherBinomial,
			Scatter:       ScatterBinomial,
		}
		d := run(t, tuning, func(c *Comm) {
			c.Allreduce(make([]byte, 64), SumFloat64)
			c.Bcast(0, make([]byte, 64))
			c.Gather(0, make([]byte, 64))
			parts := make([][]byte, c.Size())
			for i := range parts {
				parts[i] = make([]byte, 64)
			}
			c.Scatter(0, parts)
			c.ReduceScatter(parts, SumFloat64)
		})
		for name, want := range map[string]int{
			"allreduce/recdbl":       4,
			"bcast/segmented":        4,
			"gather/binomial":        4,
			"scatter/binomial":       4,
			"reducescatter/pairwise": 4,
		} {
			if got := countKind(d, trace.KindColl, name); got != want {
				t.Errorf("%s events = %d, want %d (one per rank)", name, got, want)
			}
		}
	})

	t.Run("legacy-defaults", func(t *testing.T) {
		d := run(t, nil, func(c *Comm) {
			c.Allreduce(make([]byte, 64), SumFloat64)
			c.Bcast(0, make([]byte, 64))
		})
		if got := countKind(d, trace.KindColl, "allreduce/redbcast"); got != 4 {
			t.Errorf("allreduce/redbcast events = %d, want 4", got)
		}
		// The legacy allreduce broadcasts the result, so nested
		// bcast/binomial events appear too; the explicit Bcast adds 4 more.
		if got := countKind(d, trace.KindColl, "bcast/binomial"); got < 4 {
			t.Errorf("bcast/binomial events = %d, want >= 4", got)
		}
	})

	t.Run("auto-resolves", func(t *testing.T) {
		tuning := &CollTuning{Allreduce: AllreduceAuto}
		// Small payload: Auto must resolve to recursive doubling and the
		// trace must record that resolution.
		d := run(t, tuning, func(c *Comm) {
			c.Allreduce(make([]byte, 64), SumFloat64)
		})
		if got := countKind(d, trace.KindColl, "allreduce/recdbl"); got != 4 {
			t.Errorf("auto small allreduce recorded %d recdbl events, want 4", got)
		}
		if got := countKind(d, trace.KindColl, "allreduce/auto"); got != 0 {
			t.Error("trace recorded the Auto request instead of the resolved algorithm")
		}
	})
}

// TestTracingPreservesVirtualClocks is the on/off determinism property:
// attaching a recorder must not move any simulated clock by a single bit.
// The same workload runs twice on fresh worlds — once traced, once not —
// and every rank's final virtual time must be bit-identical.
func TestTracingPreservesVirtualClocks(t *testing.T) {
	workload := func(traced bool) ([]vclock.Time, *trace.Recorder) {
		w := newTestWorld(t, 4)
		var rec *trace.Recorder
		if traced {
			rec = attachRecorder(w)
		}
		finals := make([]vclock.Time, 4)
		runWorld(t, w, func(p *Proc) error {
			comm := p.CommWorld()
			for iter := 0; iter < 3; iter++ {
				p.Compute(1000)
				comm.Allreduce(make([]byte, 256), SumFloat64)
				next := (p.Rank() + 1) % comm.Size()
				prev := (p.Rank() + comm.Size() - 1) % comm.Size()
				comm.Send(next, iter, make([]byte, 512))
				comm.Recv(prev, iter)
				comm.Bcast(0, make([]byte, 128))
			}
			finals[p.Rank()] = p.Now()
			return nil
		})
		return finals, rec
	}
	plain, _ := workload(false)
	traced, rec := workload(true)
	for r := range plain {
		if plain[r] != traced[r] {
			t.Errorf("rank %d final clock: untraced %v, traced %v", r, plain[r], traced[r])
		}
	}
	if n := len(rec.Data().Events()); n == 0 {
		t.Fatal("traced run recorded nothing")
	}
}

// TestTCPPooledTraced is the ownership regression for tracing over the
// pooled wire path (run it under -race): events must carry byte counts
// and metadata only, never retain payload buffers — with pooling on, a
// retained buffer would be recycled under the recorder and corrupt either
// payloads or events.
func TestTCPPooledTraced(t *testing.T) {
	SetBufferPooling(true)
	defer SetBufferPooling(true)
	c := testCluster(2)
	w, closeT, err := NewWorldTCPOpts(c, OneProcessPerMachine(c), TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeT()
	rec := attachRecorder(w)
	const rounds = 64
	const size = 4096
	err = w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		payload := bytes.Repeat([]byte{0xA5}, size)
		for i := 0; i < rounds; i++ {
			if p.Rank() == 0 {
				comm.Send(1, i, payload)
				got, _ := comm.Recv(1, i)
				if len(got) != size || got[0] != 0xA5 || got[size-1] != 0xA5 {
					return fmt.Errorf("round %d: corrupt echo", i)
				}
			} else {
				got, _ := comm.Recv(0, i)
				if len(got) != size || got[0] != 0xA5 || got[size-1] != 0xA5 {
					return fmt.Errorf("round %d: corrupt payload", i)
				}
				comm.Send(0, i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rec.Data()
	if got := countKind(d, trace.KindSend, ""); got != 2*rounds {
		t.Errorf("send events = %d, want %d", got, 2*rounds)
	}
	if got := countKind(d, trace.KindRecv, ""); got != 2*rounds {
		t.Errorf("recv events = %d, want %d", got, 2*rounds)
	}
	for _, evs := range d.PerRank {
		for _, e := range evs {
			if e.Bytes != size {
				t.Fatalf("event byte count = %d, want %d: %+v", e.Bytes, size, e)
			}
		}
	}
}

// TestRecorderFaultEvents checks the fault-tolerance lifecycle events:
// revoke, agree and shrink must be recorded on every participating rank.
func TestRecorderFaultEvents(t *testing.T) {
	w := newTestWorld(t, 3)
	rec := attachRecorder(w)
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Revoke()
		}
		comm.AgreeFailed()
		if nc := comm.Shrink(); nc == nil {
			return fmt.Errorf("shrink returned nil")
		}
		return nil
	})
	d := rec.Data()
	if got := countKind(d, trace.KindRevoke, ""); got != 1 {
		t.Errorf("revoke events = %d, want 1", got)
	}
	// Two agreements per rank: the explicit AgreeFailed plus the one
	// Shrink runs internally.
	if got := countKind(d, trace.KindAgree, ""); got != 6 {
		t.Errorf("agree events = %d, want 6", got)
	}
	if got := countKind(d, trace.KindShrink, ""); got != 3 {
		t.Errorf("shrink events = %d, want 3", got)
	}
}
