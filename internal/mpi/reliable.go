package mpi

// Reliable delivery over faulty links. The simulation's links are perfect
// by default: every frame handed to deliver reaches the destination
// mailbox. A LinkFilter — installed by the chaos engine — breaks that
// assumption deterministically: each frame crossing a link is adjudicated
// (deliver, delay, duplicate, drop) as a pure function of the link, the
// virtual time, the sender's sequence number and the attempt, so the same
// seed reproduces the same faults bit for bit on both transports (the
// filter sits at the envelope-to-frame boundary that the in-process and
// TCP paths share).
//
// The retransmit path makes the library survive those faults without app
// involvement, the way a reliable transport would:
//
//   - every message already carries a per-sender sequence stamp (seq);
//   - a dropped frame is resent after an ack-timeout that backs off
//     exponentially, charged in virtual time (the resend also re-occupies
//     the sender's interface, so retransmissions consume bandwidth);
//   - duplicated frames are suppressed in the destination mailbox by the
//     sequence high-mark (see mailbox.maxSeq);
//   - a frame still undeliverable after MaxRetries resends declares the
//     destination unreachable: a *ProcessFailedError whose Kind is
//     FailurePartition when the peer is not known dead — the caller (or
//     the HMPI degradation policy above) decides whether to rebuild
//     around the link or give up.
//
// Per-link statistics (drops, duplicates, retransmits, injected delay)
// feed the HMPI DegradationPolicy through the degrade watch.

import (
	"errors"

	"repro/internal/hnoc"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// FailureKindOf extracts the failure kind from an error chain containing
// a *ProcessFailedError. ok is false when the error is unrelated to a
// process failure.
func FailureKindOf(err error) (kind FailureKind, ok bool) {
	var pfe *ProcessFailedError
	if errors.As(err, &pfe) {
		return pfe.Kind, true
	}
	return 0, false
}

// IsPartitionError reports whether err is a process-failure error caused
// by a suspected network partition (as opposed to a crash).
func IsPartitionError(err error) bool {
	kind, ok := FailureKindOf(err)
	return ok && kind == FailurePartition
}

// LinkOutcome is a filter's verdict on one frame-transmission attempt.
type LinkOutcome struct {
	// Drop discards the frame on the wire. With a retransmit policy
	// enabled the sender resends after an ack timeout; without one the
	// message is silently lost.
	Drop bool
	// Dup delivers a second, identical copy of the frame immediately
	// after the first (suppressed by the receiver's dedupe window).
	Dup bool
	// Delay defers the frame's arrival by this much virtual time on top
	// of the modeled link latency.
	Delay vclock.Time
}

// LinkFilter adjudicates one transmission attempt of the frame with the
// given per-sender sequence from world rank src to dst at virtual time
// `at` (attempt 0 is the original transmission, higher attempts are
// retransmissions). It must be a pure function of its arguments so runs
// are reproducible; it is called from every sender's goroutine
// concurrently.
type LinkFilter func(src, dst int, at vclock.Time, seq int64, attempt int) LinkOutcome

// RetryPolicy configures the retransmit path.
type RetryPolicy struct {
	// Enabled turns retransmission on. Off, a dropped frame is lost — the
	// pre-chaos behaviour, in which only process death loses messages.
	Enabled bool
	// RTO is the virtual-time ack timeout before the first resend; it
	// doubles after every further loss (capped at 32x).
	RTO vclock.Time
	// MaxRetries bounds the resends of one frame. Beyond it the
	// destination is declared unreachable with a partition-kind failure.
	MaxRetries int
}

// DefaultRetryPolicy returns the retransmit configuration the chaos
// harness arms: a 20 ms initial timeout doubling per loss, six resends
// (cumulative ~1.26 s of virtual patience, so transient partitions
// shorter than that are ridden out rather than escalated).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Enabled: true, RTO: 0.02, MaxRetries: 6}
}

// rtoFor returns the backoff before resend attempt (0-based), doubling
// per attempt and capped at 32x the base.
func (rp RetryPolicy) rtoFor(attempt int) vclock.Time {
	rto := rp.RTO
	if rto <= 0 {
		rto = 0.02
	}
	if attempt > 5 {
		attempt = 5
	}
	return rto * vclock.Time(int64(1)<<attempt)
}

// linkPair keys per-link statistics by (source, destination) world rank.
type linkPair struct {
	Src, Dst int
}

// LinkStats accumulates the observed behaviour of one directed link under
// a link filter: what the chaos engine injected and what the retransmit
// path paid to absorb it.
type LinkStats struct {
	Drops       int64       // frames the filter discarded
	Dups        int64       // duplicate frames injected
	Retransmits int64       // resends performed
	ExtraDelay  vclock.Time // injected delay plus retransmit timeouts
}

// SetLinkFilter installs the frame adjudicator (nil removes it) and arms
// the duplicate-suppression window in every mailbox. Install before Run.
func (w *World) SetLinkFilter(f LinkFilter) {
	w.linkFilter = f
	if f == nil {
		return
	}
	w.linkMu.Lock()
	if w.linkStats == nil {
		w.linkStats = make(map[linkPair]*LinkStats)
	}
	w.linkMu.Unlock()
	for _, p := range w.procs {
		p.mbox.enableDedupe()
	}
}

// SetRetransmit installs the retransmit policy the filtered path applies
// to dropped frames. Install before Run.
func (w *World) SetRetransmit(rp RetryPolicy) { w.retry = rp }

// Retransmit returns the installed retransmit policy.
func (w *World) Retransmit() RetryPolicy { return w.retry }

// SetDegradeWatch installs an observer invoked (outside the stats lock,
// from the sending goroutine) after every retransmit or injected delay
// with the link's accumulated statistics. The HMPI degradation policy
// uses it to notice chronically degraded links — lossy or merely slow —
// while the run is in flight.
func (w *World) SetDegradeWatch(watch func(src, dst int, st LinkStats)) {
	w.linkMu.Lock()
	w.degradeWatch = watch
	w.linkMu.Unlock()
}

// LinkStatsSnapshot returns a copy of the per-link fault statistics
// accumulated so far.
func (w *World) LinkStatsSnapshot() map[[2]int]LinkStats {
	out := make(map[[2]int]LinkStats)
	w.linkMu.Lock()
	for k, v := range w.linkStats {
		out[[2]int{k.Src, k.Dst}] = *v
	}
	w.linkMu.Unlock()
	return out
}

// noteLink updates one link's statistics and returns the post-update
// snapshot together with the degrade watch to notify (nil when none).
func (w *World) noteLink(src, dst int, f func(*LinkStats)) (LinkStats, func(src, dst int, st LinkStats)) {
	w.linkMu.Lock()
	st := w.linkStats[linkPair{src, dst}]
	if st == nil {
		st = &LinkStats{}
		w.linkStats[linkPair{src, dst}] = st
	}
	f(st)
	snap, watch := *st, w.degradeWatch
	w.linkMu.Unlock()
	return snap, watch
}

// recordLinkEvent emits a link-layer trace event on the sender's shard
// (callers run on the sender's goroutine, satisfying the single-writer
// rule).
func (p *Proc) recordLinkEvent(kind trace.Kind, dst int, name string, start, end vclock.Time, seq int64, a0 int64) {
	r := p.world.rec
	if r == nil {
		return
	}
	wall := r.NowNS()
	r.Emit(p.rank, trace.Event{
		Rank: int32(p.rank), Kind: kind, Peer: int32(dst), Name: name,
		Start: start, End: end, WallStart: wall, WallEnd: wall,
		Ctx: seq, A0: a0,
	})
}

// cloneEnvelope builds an independently owned copy of e (same metadata
// and sequence stamp, pool-backed payload copy): the wire duplicate.
func cloneEnvelope(e *envelope) *envelope {
	d := getEnv()
	d.ctx, d.src, d.tag, d.seq, d.arrive = e.ctx, e.src, e.tag, e.seq, e.arrive
	if len(e.data) > 0 {
		pb := getBuf(len(e.data))
		copy(pb.b, e.data)
		d.data, d.pbuf = pb.b, pb
	}
	return d
}

// transmitFiltered carries env across the (src,dst) link under the
// installed filter: injected delay inflates the arrival, a duplicate is
// delivered alongside (and suppressed at the receiver), and a dropped
// frame is retransmitted after an exponentially backed-off ack timeout —
// each resend re-reserves the sender's interface, so retransmissions
// consume bandwidth and push later sends back. Exhausting the retry
// budget declares the destination unreachable with a partition-kind
// failure (crash-kind if the peer is already known dead). end is the
// virtual time the first copy left the sender's interface.
func (p *Proc) transmitFiltered(dstW int, env *envelope, link hnoc.LinkSpec, end vclock.Time) {
	w := p.world
	f := w.linkFilter
	rp := w.retry
	xfer := vclock.Time(link.TransferTime(len(env.data)))
	wireAt := end // when the current copy finished serialising
	for attempt := 0; ; attempt++ {
		out := f(env.src, dstW, wireAt, env.seq, attempt)
		if !out.Drop {
			if out.Delay > 0 {
				env.arrive += out.Delay
				p.recordLinkEvent(trace.KindLinkFault, dstW, "delay", wireAt, wireAt+out.Delay, env.seq, int64(attempt))
				snap, watch := w.noteLink(env.src, dstW, func(st *LinkStats) { st.ExtraDelay += out.Delay })
				if watch != nil {
					watch(env.src, dstW, snap)
				}
			}
			if out.Dup {
				p.recordLinkEvent(trace.KindLinkFault, dstW, "dup", wireAt, wireAt, env.seq, int64(attempt))
				w.noteLink(env.src, dstW, func(st *LinkStats) { st.Dups++ })
				w.deliver(dstW, cloneEnvelope(env))
			}
			w.deliver(dstW, env)
			return
		}
		p.recordLinkEvent(trace.KindLinkFault, dstW, "drop", wireAt, wireAt, env.seq, int64(attempt))
		w.noteLink(env.src, dstW, func(st *LinkStats) { st.Drops++ })
		if !rp.Enabled {
			releaseEnvelope(env)
			return // lost: without the retransmit path a dropped frame is gone
		}
		if attempt >= rp.MaxRetries {
			releaseEnvelope(env)
			kind := FailurePartition
			if w.IsFailed(dstW) {
				kind = FailureCrash
			}
			panic(&ProcessFailedError{Rank: dstW, Kind: kind})
		}
		// Ack timeout: the loss is noticed rtoFor(attempt) after the copy
		// left the wire; the resend then re-occupies the interface.
		rto := rp.rtoFor(attempt)
		_, resendEnd := p.nicOut.Reserve(wireAt+rto, xfer)
		p.recordLinkEvent(trace.KindRetransmit, dstW, "", wireAt, resendEnd, env.seq, int64(attempt+1))
		snap, watch := w.noteLink(env.src, dstW, func(st *LinkStats) {
			st.Retransmits++
			st.ExtraDelay += resendEnd - wireAt
		})
		if watch != nil {
			watch(env.src, dstW, snap)
		}
		wireAt = resendEnd
		env.arrive = resendEnd + vclock.Time(link.Latency)
	}
}

// SendResilient sends through the retransmit path and surfaces a delivery
// failure as an error instead of a panic. The error's failure kind
// (FailureKindOf / IsPartitionError) distinguishes a crashed peer from a
// suspected partition; callers must consume it before communicating
// further — the hmpivet retrycontract analyzer enforces this contract.
func (c *Comm) SendResilient(dst, tag int, data []byte) error {
	return Catch(func() { c.Send(dst, tag, data) })
}

// RecvResilient receives with failures surfaced as an error instead of a
// panic, under the same kind-consumption contract as SendResilient.
func (c *Comm) RecvResilient(src, tag int) (data []byte, st Status, err error) {
	err = Catch(func() { data, st = c.Recv(src, tag) })
	return data, st, err
}
