package mpi

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/vclock"
)

// dropFirstAttempt drops attempt 0 of every frame crossing a remote link,
// so every message needs exactly one retransmission.
func dropFirstAttempt(src, dst int, at vclock.Time, seq int64, attempt int) LinkOutcome {
	return LinkOutcome{Drop: attempt == 0}
}

func TestRetransmitDeliversUnderDrop(t *testing.T) {
	w := newTestWorld(t, 2)
	w.SetLinkFilter(dropFirstAttempt)
	w.SetRetransmit(DefaultRetryPolicy())
	const n = 5
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				comm.Send(1, 7, []byte{byte(i)})
			}
		case 1:
			for i := 0; i < n; i++ {
				data, _ := comm.Recv(0, 7)
				if len(data) != 1 || data[0] != byte(i) {
					return fmt.Errorf("message %d: got %v", i, data)
				}
			}
		}
		return nil
	})
	st := w.LinkStatsSnapshot()[[2]int{0, 1}]
	if st.Drops != n || st.Retransmits != n {
		t.Fatalf("link 0->1 stats = %+v, want %d drops and %d retransmits", st, n, n)
	}
	if st.ExtraDelay <= 0 {
		t.Fatalf("retransmissions charged no virtual time: %+v", st)
	}
}

func TestRetransmitBacksOffExponentially(t *testing.T) {
	// Three consecutive drops cost RTO + 2RTO + 4RTO of ack timeouts on
	// top of the serialisation times; the message still arrives.
	filter := func(src, dst int, at vclock.Time, seq int64, attempt int) LinkOutcome {
		return LinkOutcome{Drop: attempt < 3}
	}
	rp := RetryPolicy{Enabled: true, RTO: 0.01, MaxRetries: 6}

	elapsed := func(drops bool) vclock.Time {
		w := newTestWorld(t, 2)
		if drops {
			w.SetLinkFilter(filter)
		} else {
			w.SetLinkFilter(func(int, int, vclock.Time, int64, int) LinkOutcome { return LinkOutcome{} })
		}
		w.SetRetransmit(rp)
		runWorld(t, w, func(p *Proc) error {
			comm := p.CommWorld()
			switch p.Rank() {
			case 0:
				comm.Send(1, 7, []byte("x"))
			case 1:
				comm.Recv(0, 7)
			}
			return nil
		})
		return w.Makespan()
	}

	clean, faulty := elapsed(false), elapsed(true)
	// The backoff sum 1+2+4 = 7 RTOs, plus three extra serialisations.
	if faulty <= clean+7*rp.RTO {
		t.Fatalf("faulty run %v not slower than clean %v by the 7x-RTO backoff", faulty, clean)
	}
}

func TestDuplicatesSuppressedByMailbox(t *testing.T) {
	// Duplicate every frame: without the dedupe window the receiver would
	// see each payload twice and the ordered receive loop would desync.
	w := newTestWorld(t, 2)
	w.SetLinkFilter(func(src, dst int, at vclock.Time, seq int64, attempt int) LinkOutcome {
		return LinkOutcome{Dup: true}
	})
	const n = 4
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				comm.Send(1, 7, []byte{byte(i)})
			}
			// A final sentinel on another tag: if a duplicate survived in
			// the mailbox, the wildcard probe below would see 5 messages.
			comm.Send(1, 8, []byte{0xff})
		case 1:
			for i := 0; i < n; i++ {
				data, _ := comm.Recv(0, 7)
				if len(data) != 1 || data[0] != byte(i) {
					return fmt.Errorf("message %d: got %v (duplicate delivered?)", i, data)
				}
			}
			if data, _ := comm.Recv(0, 8); data[0] != 0xff {
				return fmt.Errorf("sentinel corrupted: %v", data)
			}
		}
		return nil
	})
	st := w.LinkStatsSnapshot()[[2]int{0, 1}]
	if st.Dups != n+1 {
		t.Fatalf("link 0->1 dups = %d, want %d", st.Dups, n+1)
	}
}

func TestRetryExhaustionDeclaresPartitionNotFailure(t *testing.T) {
	// A black-holed link exhausts the retry budget: the sender gets a
	// partition-kind ProcessFailedError, but the peer is NOT marked failed
	// (it is alive behind the partition) — the zero-false-positive
	// contract.
	w := newTestWorld(t, 2)
	w.SetLinkFilter(func(src, dst int, at vclock.Time, seq int64, attempt int) LinkOutcome {
		return LinkOutcome{Drop: src == 0 && dst == 1}
	})
	w.SetRetransmit(RetryPolicy{Enabled: true, RTO: 0.001, MaxRetries: 2})
	var mu sync.Mutex
	var sendErr error
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 0:
			err := comm.SendResilient(1, 7, []byte("doomed"))
			mu.Lock()
			sendErr = err
			mu.Unlock()
		case 1:
			// Rank 1 never receives: the 0->1 direction is black-holed. It
			// just exits; the test asserts on the sender's error.
		}
		return nil
	})
	mu.Lock()
	defer mu.Unlock()
	if sendErr == nil {
		t.Fatal("black-holed send succeeded")
	}
	if !IsPartitionError(sendErr) {
		t.Fatalf("send error = %v, want partition-kind ProcessFailedError", sendErr)
	}
	if kind, ok := FailureKindOf(sendErr); !ok || kind != FailurePartition {
		t.Fatalf("FailureKindOf = %v,%v, want FailurePartition,true", kind, ok)
	}
	if w.IsFailed(1) {
		t.Fatal("retry exhaustion marked the peer failed: false-positive failure declaration")
	}
}

func TestRetryPolicyAccessors(t *testing.T) {
	w := newTestWorld(t, 2)
	w.SetRetransmit(RetryPolicy{Enabled: false})
	if w.Retransmit().Enabled {
		t.Fatal("Retransmit() did not report the installed policy")
	}
	rp := DefaultRetryPolicy()
	if got := rp.rtoFor(0); got != rp.RTO {
		t.Fatalf("rtoFor(0) = %v, want %v", got, rp.RTO)
	}
	if got := rp.rtoFor(3); got != 8*rp.RTO {
		t.Fatalf("rtoFor(3) = %v, want %v", got, 8*rp.RTO)
	}
	if got := rp.rtoFor(9); got != 32*rp.RTO {
		t.Fatalf("rtoFor(9) = %v, want 32x cap %v", got, 32*rp.RTO)
	}
}

// TestEmptyScheduleBitIdentity: arming an empty chaos schedule must leave
// the virtual clocks bit-for-bit identical to an unfiltered run — the
// filter only installs when faults exist, and a nil filter takes the
// original delivery path.
func TestEmptyScheduleBitIdentity(t *testing.T) {
	run := func(filtered bool) vclock.Time {
		w := newTestWorld(t, 4)
		if filtered {
			// The identity filter exercises transmitFiltered itself: even
			// the filtered path must be timing-transparent when the
			// adjudication is all-pass.
			w.SetLinkFilter(func(int, int, vclock.Time, int64, int) LinkOutcome { return LinkOutcome{} })
			w.SetRetransmit(DefaultRetryPolicy())
		}
		runWorld(t, w, func(p *Proc) error {
			comm := p.CommWorld()
			sum := comm.Allreduce([]byte{byte(p.Rank())}, func(inout, in []byte) { inout[0] += in[0] })
			if sum[0] != 0+1+2+3 {
				return fmt.Errorf("allreduce = %d", sum[0])
			}
			next := (p.Rank() + 1) % 4
			prev := (p.Rank() + 3) % 4
			comm.Send(next, 5, []byte{byte(p.Rank())})
			data, _ := comm.Recv(prev, 5)
			if data[0] != byte(prev) {
				return fmt.Errorf("ring got %d from %d", data[0], prev)
			}
			return nil
		})
		return w.Makespan()
	}
	plain, ident := run(false), run(true)
	if plain != ident {
		t.Fatalf("identity link filter changed the virtual clock: %v (plain) vs %v (filtered)", plain, ident)
	}
}
