package mpi

// Nonblocking point-to-point operations and the per-rank progress engine.
//
// A Request is created by Isend/Irecv (and by the nonblocking collectives
// of nbcoll.go) and completed by Wait or Test. The engine is the rank's
// ledger of pending operations; every MPI call — and an explicit
// Progress() poll — gives it a chance to advance them.
//
// The engine splits each operation into two halves with very different
// rules:
//
//   - Claiming is opportunistic and timing-neutral: progress() matches
//     arrived envelopes to pending receives (in posting order) and to the
//     receive steps of pending collective schedules. A claim only decides
//     ownership of a message; it reads and writes no virtual clock, so
//     the wall-clock moment a message happens to arrive can never change
//     a simulated time.
//   - Execution is timing-bearing and happens only at deterministic
//     program points: Isend charges its overhead at the post, a receive
//     charges arrival + overhead when Wait (or Test, the one documented
//     wall-sensitive operation) consumes it, and collective schedules
//     advance a private virtual cursor step by step.
//
// Overlap accounting falls out of the clock algebra: a receive consumed
// at Wait absorbs the message's arrival time with AbsorbAtLeast — a max,
// not a sum — so communication that finished while the rank was computing
// costs nothing extra, while a Wait posted too early still blocks the
// clock until the arrival. Nothing is ever double-billed.

import (
	"repro/internal/trace"
	"repro/internal/vclock"
)

// reqKind discriminates what a Request is waiting for.
type reqKind uint8

const (
	reqSend reqKind = iota // local buffer reusable when the NIC finishes
	reqRecv                // an envelope matched and consumed
	reqColl                // a collective schedule fully executed
)

// Request represents an outstanding nonblocking operation.
type Request struct {
	id   int64 // per-rank request id from 1; 0 for internal requests
	kind reqKind
	c    *Comm
	done bool

	// Receive requests.
	src  int       // requested source (comm rank or AnySource)
	tag  int
	rsel recvSel   // selector, cached at post time
	env  *envelope // matched by the engine, not yet consumed

	// Send requests.
	sendEnd vclock.Time // when the interface finishes the transfer

	// Collective requests.
	sched *nbSched

	data   []byte
	status Status
}

// progressState is the per-rank progress engine: the pending nonblocking
// operations, in posting order. It is touched only by the rank's own
// goroutine (a Proc is goroutine-confined), so it needs no locking.
type progressState struct {
	recvQ  []*Request // posted Irecvs not yet matched to an envelope
	colls  []*Request // posted nonblocking collectives not yet complete
	active bool       // re-entrancy guard
}

// overlaps reports whether any pending unmatched receive could match a
// message the given selector also matches. Blocking Recv uses it to
// decide whether it must route through the engine so posting order — not
// wakeup order — assigns messages. AnySource is treated conservatively:
// any two wildcards on one context overlap.
func (g *progressState) overlaps(ctx int64, s recvSel) bool {
	for _, r := range g.recvQ {
		if r.rsel.ctx != ctx {
			continue
		}
		if r.rsel.tag != AnyTag && s.tag != AnyTag && r.rsel.tag != s.tag {
			continue
		}
		if r.rsel.src == AnySource || s.src == AnySource || r.rsel.src == s.src {
			return true
		}
	}
	return false
}

// progress advances the engine: matches arrived envelopes to pending
// receives in posting order, then lets pending collective schedules claim
// what has arrived for their receive steps. Claiming is timing-neutral
// (see the package comment above), so calling this at arbitrary points is
// safe for determinism.
func (p *Proc) progress() {
	if p.eng.active || (len(p.eng.recvQ) == 0 && len(p.eng.colls) == 0) {
		return
	}
	p.eng.active = true
	q := p.eng.recvQ
	kept := q[:0]
	for _, r := range q {
		if r.env == nil {
			r.env = p.mbox.tryGet(r.rsel, false)
		}
		if r.env == nil {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	p.eng.recvQ = kept
	for _, r := range p.eng.colls {
		r.sched.claim(r.c)
	}
	p.eng.active = false
}

// Progress gives the progress engine an explicit poll: pending receives
// are matched against arrived messages and pending collective schedules
// claim what is already here. Every MPI call polls implicitly; Progress
// lets a long compute-only stretch drain the network without blocking.
func (p *Proc) Progress() { p.progress() }

// emitReqPost records the zero-duration posting event of a nonblocking
// operation (isend/irecv), carrying the request id in A2.
func (p *Proc) emitReqPost(kind trace.Kind, id int64, peer, tag int, ctx int64, bytes int) {
	r := p.world.rec
	if r == nil {
		return
	}
	now := p.clock.Now()
	wall := r.NowNS()
	r.Emit(p.rank, trace.Event{
		Rank: int32(p.rank), Kind: kind, Peer: int32(peer),
		Tag: int32(tag), Ctx: ctx, Bytes: int64(bytes),
		Start: now, End: now, WallStart: wall, WallEnd: wall,
		A2: id,
	})
}

// emitReqDone records the completion event of a request: a wait interval
// (KindWait, from Wait entry to completion) or a successful test
// (KindTest, instantaneous, A0 = 1). A2 carries the request id.
func (p *Proc) emitReqDone(kind trace.Kind, id int64, t0 vclock.Time, a0 int64) {
	r := p.world.rec
	if r == nil {
		return
	}
	wall := r.NowNS()
	r.Emit(p.rank, trace.Event{
		Rank: int32(p.rank), Kind: kind, Peer: -1,
		Start: t0, End: p.clock.Now(), WallStart: wall, WallEnd: wall,
		A0: a0, A2: id,
	})
}

// Isend starts a nonblocking send. The sender's clock advances only by the
// message overhead; the transfer occupies the interface in the background.
// Wait on the returned request completes when the local buffer is reusable.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	end := c.sendCommon(dst, tag, data, true)
	return c.isendReq(dst, tag, len(data), end)
}

// IsendOwned is Isend without the defensive copy; see SendOwned.
func (c *Comm) IsendOwned(dst, tag int, data []byte) *Request {
	end := c.sendCommon(dst, tag, data, false)
	return c.isendReq(dst, tag, len(data), end)
}

func (c *Comm) isendReq(dst, tag, bytes int, end vclock.Time) *Request {
	p := c.p
	p.reqID++
	p.emitReqPost(trace.KindIsend, p.reqID, c.s.members[dst], tag, c.s.id, bytes)
	return &Request{id: p.reqID, kind: reqSend, c: c, sendEnd: end}
}

// Irecv starts a nonblocking receive. The progress engine matches posted
// receives against arriving messages in posting order; Wait applies the
// receive timing and hands over the payload. A payload delivered into a
// posted Irecv is owned by the request until Wait or Test returns it —
// pooled buffers are not recycled under it.
func (c *Comm) Irecv(src, tag int) *Request {
	p := c.p
	s := c.sel(src, tag)
	p.reqID++
	r := &Request{id: p.reqID, kind: reqRecv, c: c, src: src, tag: tag, rsel: s}
	p.eng.recvQ = append(p.eng.recvQ, r)
	peer := -1
	if s.src != AnySource {
		peer = s.src
	}
	p.emitReqPost(trace.KindIrecv, r.id, peer, tag, s.ctx, 0)
	p.progress()
	return r
}

// recvViaEngine is the blocking receive for the case where a pending
// Irecv overlaps the selector: an unnumbered request joins the back of
// the posting-order queue so the earlier Irecv keeps its priority, then
// waits like any other receive. The trace sees a plain recv event.
func (c *Comm) recvViaEngine(s recvSel, anySrc bool) ([]byte, Status) {
	p := c.p
	t0 := p.clock.Now()
	src := AnySource
	if !anySrc {
		src = c.s.rankOf(s.src)
	}
	r := &Request{kind: reqRecv, c: c, src: src, rsel: s}
	p.eng.recvQ = append(p.eng.recvQ, r)
	// If the wait aborts (failed sender, revoked context) the internal
	// request must not linger in the queue claiming messages: resilient
	// callers recover from such panics and keep receiving.
	defer func() {
		if r.env == nil {
			p.engDropRecv(r)
		}
	}()
	r.waitMatch()
	p.lastRecvAnySrc = anySrc
	return c.consume(r.env, t0)
}

// waitMatch blocks until the engine has matched an envelope to this
// receive request. Each round snapshots the mailbox's enqueue counter
// before running progress, so an arrival racing the match attempt wakes
// the sleep immediately; failure of the awaited sender (or revocation)
// aborts by panic exactly as a blocking receive does.
func (r *Request) waitMatch() {
	p := r.c.p
	giveUp := r.c.failWatch(r.src)
	if rec := p.world.rec; rec != nil {
		peer := -1
		if r.rsel.src != AnySource {
			peer = r.rsel.src
		}
		rec.PendingBegin(p.rank, trace.PendingOp{
			Kind: "recv", Peer: peer, Tag: r.rsel.tag, Ctx: r.rsel.ctx,
			AnySrc: r.rsel.src == AnySource, Since: float64(p.clock.Now()),
		})
		defer rec.PendingEnd(p.rank)
	}
	for r.env == nil {
		seen := p.mbox.seqSnapshot()
		p.progress()
		if r.env != nil {
			return
		}
		p.mbox.awaitArrival(seen, giveUp)
	}
}

// Wait blocks until the request completes and returns the received
// payload and status (both zero for send requests). Completion timing is
// deterministic: a send absorbs the interface's finish time, a receive
// consumes its envelope at the Wait entry (absorbing the arrival), and a
// collective executes its remaining schedule steps in order.
func (r *Request) Wait() ([]byte, Status) {
	if r.done {
		return r.data, r.status
	}
	p := r.c.p
	t0 := p.clock.Now()
	switch r.kind {
	case reqSend:
		p.progress()
		p.clock.AbsorbAtLeast(r.sendEnd)
	case reqRecv:
		r.waitMatch()
		p.lastRecvAnySrc = r.src == AnySource
		r.data, r.status = r.c.consume(r.env, t0)
		r.env = nil
	case reqColl:
		r.data = r.sched.wait(r.c)
		p.engDropColl(r)
	}
	r.done = true
	if r.id != 0 {
		p.emitReqDone(trace.KindWait, r.id, t0, 0)
	}
	return r.data, r.status
}

// Test reports whether the request has completed, completing it if it can
// complete at the current virtual time without blocking. Test is the one
// wall-sensitive operation of the API: whether a message has been
// delivered when Test polls depends on host scheduling, exactly as
// MPI_Test's outcome depends on real arrival order. Programs that need
// bit-reproducible virtual clocks should complete with Wait.
func (r *Request) Test() (bool, []byte, Status) {
	if r.done {
		return true, r.data, r.status
	}
	p := r.c.p
	p.progress()
	now := p.clock.Now()
	switch r.kind {
	case reqSend:
		if now < r.sendEnd {
			return false, nil, Status{}
		}
	case reqRecv:
		if r.env == nil {
			return false, nil, Status{}
		}
		p.engDropRecv(r)
		p.lastRecvAnySrc = r.src == AnySource
		r.data, r.status = r.c.consume(r.env, now)
		r.env = nil
	case reqColl:
		if !r.sched.tryFinish(r.c) {
			return false, nil, Status{}
		}
		r.data = r.sched.buf
		p.engDropColl(r)
	}
	r.done = true
	if r.id != 0 {
		p.emitReqDone(trace.KindTest, r.id, p.clock.Now(), 1)
	}
	return true, r.data, r.status
}

// engDropRecv removes a matched receive request from the pending queue if
// it is still there (progress removes matched requests itself; Test may
// complete one progress already pulled out).
func (p *Proc) engDropRecv(r *Request) {
	for i, q := range p.eng.recvQ {
		if q == r {
			p.eng.recvQ = append(p.eng.recvQ[:i], p.eng.recvQ[i+1:]...)
			return
		}
	}
}

// engDropColl removes a completed collective request from the engine.
func (p *Proc) engDropColl(r *Request) {
	for i, q := range p.eng.colls {
		if q == r {
			p.eng.colls = append(p.eng.colls[:i], p.eng.colls[i+1:]...)
			return
		}
	}
}

// WaitAll completes all requests in order, returning payloads in request
// order (MPI_Waitall).
func WaitAll(reqs []*Request) [][]byte {
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		out[i], _ = r.Wait()
	}
	return out
}

// WaitAny completes one of the requests — preferring one that is already
// completable without blocking — and returns its index, payload and
// status (MPI_Waitany). With no completable request it blocks until some
// message arrives and polls again. Panics on an empty or fully-completed
// slice. Like Test, which request WaitAny picks can depend on real
// arrival order.
func WaitAny(reqs []*Request) (int, []byte, Status) {
	if len(reqs) == 0 {
		panic("mpi: WaitAny with no requests")
	}
	for {
		pending := -1
		for i, r := range reqs {
			if r.done {
				continue
			}
			if pending < 0 {
				pending = i
			}
			if ok, data, st := r.Test(); ok {
				return i, data, st
			}
		}
		if pending < 0 {
			panic("mpi: WaitAny with all requests already completed")
		}
		r := reqs[pending]
		if r.kind != reqRecv {
			// A send or collective that cannot complete yet only needs its
			// finish time absorbed; Wait resolves it deterministically.
			data, st := r.Wait()
			return pending, data, st
		}
		// Block until something arrives anywhere, then re-test everything:
		// the arrival may complete any of the pending receives.
		p := r.c.p
		seen := p.mbox.seqSnapshot()
		p.progress()
		if r.env == nil {
			p.mbox.awaitArrival(seen, waitAnyGiveUp(reqs))
		}
	}
}

// waitAnyGiveUp aggregates the failure watches of every pending receive:
// WaitAny aborts only when one of the receives it could complete can no
// longer complete.
func waitAnyGiveUp(reqs []*Request) func() error {
	var watches []func() error
	for _, r := range reqs {
		if !r.done && r.kind == reqRecv {
			watches = append(watches, r.c.failWatch(r.src))
		}
	}
	return func() error {
		for _, w := range watches {
			if err := w(); err != nil {
				return err
			}
		}
		return nil
	}
}
