package mpi

// A real network transport: the same message-passing library running its
// traffic over TCP sockets instead of in-process queues. Every process
// opens a loopback listener; a full mesh of connections carries
// length-prefixed binary frames. The virtual-time model is unchanged —
// timestamps travel inside the frames — so a program produces identical
// results and identical simulated times under either transport, which the
// tests assert. This demonstrates that nothing in the library depends on
// shared memory between processes; it is also the hook through which a
// future multi-machine deployment would run.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"repro/internal/hnoc"
	"repro/internal/vclock"
)

// frameHeaderLen is the fixed portion of a wire frame:
// ctx, src, tag, seq (int64) + arrive (float64) + payload length (uint32).
const frameHeaderLen = 8*5 + 4

// tcpTransport carries envelopes over a loopback TCP mesh.
type tcpTransport struct {
	world *World

	listeners []net.Listener
	connMu    []sync.Mutex // per destination: serialises writers
	conns     [][]net.Conn // conns[src][dst]

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewWorldTCP creates a world whose messages travel over real TCP
// connections on the loopback interface. The returned close function must
// be called after Run to release the sockets.
func NewWorldTCP(cluster *hnoc.Cluster, placement []int) (*World, func() error, error) {
	w := NewWorld(cluster, placement)
	t := &tcpTransport{world: w, closed: make(chan struct{})}
	n := len(placement)

	// One listener per rank.
	t.listeners = make([]net.Listener, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, nil, fmt.Errorf("mpi: listen for rank %d: %w", r, err)
		}
		t.listeners[r] = ln
	}

	// Accept loops: each inbound connection self-identifies with its
	// source rank in the first 8 bytes, then streams frames destined for
	// the listener's rank.
	accepted := make(chan error, n)
	for r := 0; r < n; r++ {
		go func(dst int) {
			need := n - 1
			if need == 0 {
				accepted <- nil
				return
			}
			for i := 0; i < need; i++ {
				conn, err := t.listeners[dst].Accept()
				if err != nil {
					accepted <- err
					return
				}
				var hdr [8]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					accepted <- err
					return
				}
				src := int(int64(binary.LittleEndian.Uint64(hdr[:])))
				if src < 0 || src >= n {
					accepted <- fmt.Errorf("mpi: bad source rank %d on wire", src)
					return
				}
				t.wg.Add(1)
				go t.pump(dst, src, conn)
			}
			accepted <- nil
		}(r)
	}

	// Dial the mesh.
	t.conns = make([][]net.Conn, n)
	t.connMu = make([]sync.Mutex, n*n)
	for src := 0; src < n; src++ {
		t.conns[src] = make([]net.Conn, n)
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			conn, err := net.Dial("tcp", t.listeners[dst].Addr().String())
			if err != nil {
				t.Close()
				return nil, nil, fmt.Errorf("mpi: dial %d->%d: %w", src, dst, err)
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint64(hdr[:], uint64(int64(src)))
			if _, err := conn.Write(hdr[:]); err != nil {
				t.Close()
				return nil, nil, err
			}
			t.conns[src][dst] = conn
		}
	}
	for r := 0; r < n; r++ {
		if err := <-accepted; err != nil {
			t.Close()
			return nil, nil, err
		}
	}

	w.deliver = t.deliver
	return w, t.Close, nil
}

// deliver frames the envelope onto the src->dst connection.
func (t *tcpTransport) deliver(dst int, e *envelope) {
	if e.src == dst {
		// Self-delivery has no wire.
		t.world.procs[dst].mbox.put(e)
		return
	}
	n := len(t.world.procs)
	mu := &t.connMu[e.src*n+dst]
	conn := t.conns[e.src][dst]

	buf := make([]byte, frameHeaderLen+len(e.data))
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.ctx))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(e.src)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(e.tag)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(e.seq))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(float64(e.arrive)))
	binary.LittleEndian.PutUint32(buf[40:], uint32(len(e.data)))
	copy(buf[frameHeaderLen:], e.data)

	mu.Lock()
	_, err := conn.Write(buf)
	mu.Unlock()
	if err != nil {
		// The peer is gone (failure injection closes sockets): the
		// message disappears, exactly like the in-process path's
		// delivery to a closed mailbox.
		return
	}
}

// pump decodes frames from one connection into the destination mailbox.
func (t *tcpTransport) pump(dst, src int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	hdr := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return // connection closed
		}
		e := &envelope{
			ctx:    int64(binary.LittleEndian.Uint64(hdr[0:])),
			src:    int(int64(binary.LittleEndian.Uint64(hdr[8:]))),
			tag:    int(int64(binary.LittleEndian.Uint64(hdr[16:]))),
			seq:    int64(binary.LittleEndian.Uint64(hdr[24:])),
			arrive: vclock.Time(math.Float64frombits(binary.LittleEndian.Uint64(hdr[32:]))),
		}
		size := binary.LittleEndian.Uint32(hdr[40:])
		if size > 0 {
			e.data = make([]byte, size)
			if _, err := io.ReadFull(conn, e.data); err != nil {
				return
			}
		}
		if e.src != src {
			return // protocol violation; drop the connection
		}
		t.world.procs[dst].mbox.put(e)
	}
}

// Close tears the mesh down.
func (t *tcpTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		for _, ln := range t.listeners {
			if ln != nil {
				ln.Close()
			}
		}
		for _, row := range t.conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
	})
	t.wg.Wait()
	return nil
}
