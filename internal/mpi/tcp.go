package mpi

// A real network transport: the same message-passing library running its
// traffic over TCP sockets instead of in-process queues. Every process
// opens a loopback listener; a full mesh of connections carries
// length-prefixed binary frames. The virtual-time model is unchanged —
// timestamps travel inside the frames — so a program produces identical
// results and identical simulated times under either transport, which the
// tests assert. This demonstrates that nothing in the library depends on
// shared memory between processes; it is also the hook through which a
// future multi-machine deployment would run.
//
// Failure detection (fault-tolerance extension): a peer whose socket
// closes unexpectedly is marked failed, which wakes every blocked receiver
// — the wire-level analogue of World.Fail. With heartbeats enabled, each
// rank additionally emits periodic heartbeat frames on every connection; a
// rank silent beyond an adaptive threshold — the configured timeout floor,
// raised by the observed interarrival average and deviation of that pair,
// so slow or jittery links do not read as dead (see
// TCPOptions.HeartbeatTimeout for the documented no-false-positive bound)
// — is declared failed even if its sockets are still open (a hung
// process). The verdict is disambiguated: silence towards every live peer
// is a crash, silence towards only some peers while others still hear the
// rank is a suspected partition, surfaced as a FailurePartition-kind
// ProcessFailedError. Writes that fail are retried over a bounded number
// of re-dials with exponential backoff before the destination is declared
// dead, and every write carries a deadline so a wedged kernel buffer
// cannot block a sender forever.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hnoc"
	"repro/internal/vclock"
)

// frameHeaderLen is the fixed portion of a wire frame:
// ctx, src, tag, seq (int64) + arrive (float64) + payload length (uint32).
const frameHeaderLen = 8*5 + 4

// heartbeatCtx is the reserved context id of heartbeat frames; it can
// never collide with a communicator context (allocContext hands out
// non-negative ids only).
const heartbeatCtx = math.MinInt64

// TCPOptions tune the TCP transport's failure-detection machinery. The
// zero value disables heartbeats and reconnection: a closed socket then
// marks the peer failed immediately.
type TCPOptions struct {
	// HeartbeatInterval is the period of heartbeat frames on every
	// connection. Zero disables heartbeats.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the minimum silence after which a peer may be
	// declared dead. With heartbeats enabled, a socket close alone is not
	// proof of death (the peer may be reconnecting); silence beyond the
	// detection threshold is. The threshold is adaptive, never below this
	// value: each receiver tracks the observed heartbeat interarrival
	// (Jacobson-style smoothed average and deviation) and tolerates
	// silence up to max(HeartbeatTimeout, srtt + 4*rttvar +
	// 2*HeartbeatInterval), so a slow or jittery-but-alive link raises
	// its own threshold instead of producing false positives. Documented
	// bound: added per-heartbeat delay of at most HeartbeatTimeout -
	// HeartbeatInterval never yields a false-positive failure
	// declaration, even before any adaptation; sustained jitter beyond
	// that is absorbed once it has been observed.
	HeartbeatTimeout time.Duration
	// DialRetries bounds the re-dial attempts after a failed write
	// before the destination is declared dead.
	DialRetries int
	// DialBackoff is the delay before the first re-dial; it doubles
	// after every failed attempt.
	DialBackoff time.Duration
	// WriteTimeout is the per-operation deadline applied to every frame
	// write. Zero means no deadline.
	WriteTimeout time.Duration
}

// DefaultTCPOptions returns the failure-detection configuration used by
// NewWorldTCP: heartbeats every 50 ms with a 2 s silence threshold, three
// re-dial attempts starting at 10 ms backoff, and a 5 s write deadline.
func DefaultTCPOptions() TCPOptions {
	return TCPOptions{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		DialRetries:       3,
		DialBackoff:       10 * time.Millisecond,
		WriteTimeout:      5 * time.Second,
	}
}

// tcpTransport carries envelopes over a loopback TCP mesh.
type tcpTransport struct {
	world *World
	opts  TCPOptions

	listeners []net.Listener
	connMu    []sync.Mutex // per (src,dst) pair: serialises writers and conn swaps
	conns     [][]net.Conn // conns[src][dst]

	// lastSeen[dst][src] is the UnixNano time dst's pump last heard any
	// frame from src (heartbeat or payload).
	lastSeen [][]atomic.Int64
	// hbAvg/hbDev[dst][src] are Jacobson-style estimates (nanoseconds) of
	// the frame interarrival dst observes from src: avg += (sample-avg)/8,
	// dev += (|sample-avg|-dev)/4. Zero avg means no sample yet. They feed
	// the adaptive silence threshold (silenceLimit).
	hbAvg [][]atomic.Int64
	hbDev [][]atomic.Int64
	// silenced[src] suppresses src's heartbeats — a test hook simulating
	// a hung process whose sockets stay open.
	silenced []atomic.Bool
	// hbDelay[src] adds an artificial wall-clock delay before each of
	// src's heartbeat rounds — a test hook simulating a slow link.
	hbDelay []atomic.Int64
	// hbMute[src*n+dst] suppresses src's heartbeats towards dst only — a
	// test hook simulating an asymmetric partition (src alive for some
	// peers, silent for others).
	hbMute []atomic.Bool

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewWorldTCP creates a world whose messages travel over real TCP
// connections on the loopback interface, with the default failure-detection
// options. The returned close function must be called after Run to release
// the sockets.
func NewWorldTCP(cluster *hnoc.Cluster, placement []int) (*World, func() error, error) {
	return NewWorldTCPOpts(cluster, placement, DefaultTCPOptions())
}

// NewWorldTCPOpts is NewWorldTCP with explicit failure-detection options.
func NewWorldTCPOpts(cluster *hnoc.Cluster, placement []int, opts TCPOptions) (*World, func() error, error) {
	w := NewWorld(cluster, placement)
	t, err := newTCPTransport(w, opts)
	if err != nil {
		return nil, nil, err
	}
	return w, t.Close, nil
}

func newTCPTransport(w *World, opts TCPOptions) (*tcpTransport, error) {
	t := &tcpTransport{world: w, opts: opts, closed: make(chan struct{})}
	n := w.Size()

	t.lastSeen = make([][]atomic.Int64, n)
	for i := range t.lastSeen {
		t.lastSeen[i] = make([]atomic.Int64, n)
	}
	t.hbAvg = make([][]atomic.Int64, n)
	t.hbDev = make([][]atomic.Int64, n)
	for i := range t.hbAvg {
		t.hbAvg[i] = make([]atomic.Int64, n)
		t.hbDev[i] = make([]atomic.Int64, n)
	}
	t.silenced = make([]atomic.Bool, n)
	t.hbDelay = make([]atomic.Int64, n)
	t.hbMute = make([]atomic.Bool, n*n)
	now := time.Now().UnixNano()
	for dst := 0; dst < n; dst++ {
		for src := 0; src < n; src++ {
			t.lastSeen[dst][src].Store(now)
		}
	}

	// One listener per rank.
	t.listeners = make([]net.Listener, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("mpi: listen for rank %d: %w", r, err)
		}
		t.listeners[r] = ln
	}

	// Accept loops: each inbound connection self-identifies with its
	// source rank in the first 8 bytes, then streams frames destined for
	// the listener's rank. The loop keeps accepting after startup so a
	// sender can re-dial (reconnect after a transient failure).
	accepted := make(chan error, n)
	for r := 0; r < n; r++ {
		t.wg.Add(1)
		go t.acceptLoop(r, n, accepted)
	}

	// Dial the mesh.
	t.conns = make([][]net.Conn, n)
	t.connMu = make([]sync.Mutex, n*n)
	for src := 0; src < n; src++ {
		t.conns[src] = make([]net.Conn, n)
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			conn, err := t.dial(src, dst)
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("mpi: dial %d->%d: %w", src, dst, err)
			}
			t.conns[src][dst] = conn
		}
	}
	for r := 0; r < n; r++ {
		if err := <-accepted; err != nil {
			t.Close()
			return nil, err
		}
	}

	w.deliver = t.deliver
	// deliver serialises the payload into the frame before returning, so
	// sendCommon can skip its defensive copy for non-self wire sends.
	w.wireTransport = true
	// Failure injection closes the failed rank's sockets, so remote peers
	// observe the crash on the wire exactly as they would a real one.
	w.OnFail(t.onRankFailed)

	if opts.HeartbeatInterval > 0 {
		for r := 0; r < n; r++ {
			t.wg.Add(1)
			go t.heartbeat(r)
		}
		t.wg.Add(1)
		go t.monitor()
	}
	return t, nil
}

// acceptLoop accepts inbound connections for rank dst forever; the first
// n-1 peers complete the startup handshake.
func (t *tcpTransport) acceptLoop(dst, n int, accepted chan<- error) {
	defer t.wg.Done()
	need := n - 1
	reported := need == 0
	if reported {
		accepted <- nil
	}
	got := 0
	for {
		conn, err := t.listeners[dst].Accept()
		if err != nil {
			if !reported {
				accepted <- err
				reported = true
			}
			return // listener closed
		}
		var hdr [8]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			conn.Close()
			if !reported {
				accepted <- err
				reported = true
			}
			continue
		}
		src := int(int64(binary.LittleEndian.Uint64(hdr[:])))
		if src < 0 || src >= n {
			conn.Close()
			if !reported {
				accepted <- fmt.Errorf("mpi: bad source rank %d on wire", src)
				reported = true
			}
			continue
		}
		t.wg.Add(1)
		go t.pump(dst, src, conn)
		got++
		if !reported && got == need {
			accepted <- nil
			reported = true
		}
	}
}

// dial opens and identifies one src->dst connection.
func (t *tcpTransport) dial(src, dst int) (net.Conn, error) {
	conn, err := net.Dial("tcp", t.listeners[dst].Addr().String())
	if err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(int64(src)))
	if t.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	}
	if _, err := conn.Write(hdr[:]); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	return conn, nil
}

// frameInto encodes an envelope for the wire into buf, which must be
// frameHeaderLen+len(e.data) bytes long.
func frameInto(buf []byte, e *envelope) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.ctx))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(e.src)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(e.tag)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(e.seq))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(float64(e.arrive)))
	binary.LittleEndian.PutUint32(buf[40:], uint32(len(e.data)))
	copy(buf[frameHeaderLen:], e.data)
}

// frameBuf encodes an envelope into a pooled buffer; the caller releases
// it once the frame is written (or abandoned).
func frameBuf(e *envelope) *poolBuf {
	pb := getBuf(frameHeaderLen + len(e.data))
	frameInto(pb.b, e)
	return pb
}

// writeFrame sends one frame on the src->dst connection under the pair's
// mutex, applying the per-operation deadline.
func (t *tcpTransport) writeFrame(src, dst int, buf []byte) error {
	n := len(t.world.procs)
	mu := &t.connMu[src*n+dst]
	mu.Lock()
	defer mu.Unlock()
	conn := t.conns[src][dst]
	if conn == nil {
		return fmt.Errorf("mpi: no connection %d->%d", src, dst)
	}
	if t.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	}
	_, err := conn.Write(buf)
	return err
}

// deliver frames the envelope onto the src->dst connection, re-dialling
// with exponential backoff on write failure before declaring the
// destination dead.
func (t *tcpTransport) deliver(dst int, e *envelope) {
	if e.src == dst {
		// Self-delivery has no wire.
		t.world.procs[dst].mbox.put(e)
		return
	}
	if t.world.IsFailed(dst) {
		releaseEnvelope(e)
		return // message to a failed process disappears
	}
	// The frame captures the payload, so the envelope (and, for
	// sendCommon's copy elision, the sender's buffer) is done with as soon
	// as the frame is built; the pooled frame buffer outlives the write.
	pb := frameBuf(e)
	defer pb.release()
	src := e.src
	releaseEnvelope(e)
	if t.writeFrame(src, dst, pb.b) == nil {
		return
	}
	if t.reconnect(src, dst, pb.b) {
		return
	}
	// The peer stayed unreachable through every retry: it is dead. Mark
	// it failed so blocked receivers abort instead of hanging; the
	// message disappears, exactly like the in-process path's delivery to
	// a closed mailbox.
	select {
	case <-t.closed:
	default:
		t.world.Fail(dst)
	}
}

// reconnect re-dials src->dst up to DialRetries times with exponential
// backoff, retrying the frame after each successful dial. It reports
// whether the frame was eventually written.
func (t *tcpTransport) reconnect(src, dst int, buf []byte) bool {
	backoff := t.opts.DialBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	n := len(t.world.procs)
	mu := &t.connMu[src*n+dst]
	for attempt := 0; attempt < t.opts.DialRetries; attempt++ {
		select {
		case <-t.closed:
			return false
		case <-time.After(backoff):
		}
		backoff *= 2
		if t.world.IsFailed(dst) {
			return false
		}
		conn, err := t.dial(src, dst)
		if err != nil {
			continue
		}
		mu.Lock()
		if old := t.conns[src][dst]; old != nil {
			old.Close()
		}
		t.conns[src][dst] = conn
		mu.Unlock()
		if t.writeFrame(src, dst, buf) == nil {
			return true
		}
	}
	return false
}

// pump decodes frames from one connection into the destination mailbox.
// An unexpected end of stream is a failure signal: without heartbeats the
// peer is declared dead on the spot (a closed socket means the process is
// gone); with heartbeats the verdict is left to the silence monitor, which
// gives a reconnecting peer its grace period.
func (t *tcpTransport) pump(dst, src int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	hdr := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			t.peerGone(dst, src)
			return
		}
		ctx := int64(binary.LittleEndian.Uint64(hdr[0:]))
		size := binary.LittleEndian.Uint32(hdr[40:])
		if ctx == heartbeatCtx {
			t.observe(dst, src, time.Now().UnixNano())
			continue
		}
		e := getEnv()
		e.ctx = ctx
		e.src = int(int64(binary.LittleEndian.Uint64(hdr[8:])))
		e.tag = int(int64(binary.LittleEndian.Uint64(hdr[16:])))
		e.seq = int64(binary.LittleEndian.Uint64(hdr[24:]))
		e.arrive = vclock.Time(math.Float64frombits(binary.LittleEndian.Uint64(hdr[32:])))
		if size > 0 {
			// Pool-backed payload: the consumption helpers copy-on-retain,
			// so recycling the buffer after the receive is safe.
			pb := getBuf(int(size))
			if _, err := io.ReadFull(conn, pb.b); err != nil {
				pb.release()
				putEnv(e)
				t.peerGone(dst, src)
				return
			}
			e.data = pb.b
			e.pbuf = pb
		}
		if e.src != src {
			releaseEnvelope(e)
			return // protocol violation; drop the connection
		}
		t.observe(dst, src, time.Now().UnixNano())
		t.world.procs[dst].mbox.put(e)
	}
}

// observe records that dst heard from src at wall time now (UnixNano) and
// folds the interarrival sample into the Jacobson estimators behind the
// adaptive silence threshold. Updates are load/store (not CAS): two pumps
// can overlap briefly across a reconnect, and a lost statistical sample
// is harmless.
func (t *tcpTransport) observe(dst, src int, now int64) {
	prev := t.lastSeen[dst][src].Swap(now)
	sample := now - prev
	if sample <= 0 {
		return
	}
	avg := t.hbAvg[dst][src].Load()
	if avg == 0 {
		t.hbAvg[dst][src].Store(sample)
		t.hbDev[dst][src].Store(sample / 2)
		return
	}
	diff := sample - avg
	t.hbAvg[dst][src].Store(avg + diff/8)
	if diff < 0 {
		diff = -diff
	}
	dev := t.hbDev[dst][src].Load()
	t.hbDev[dst][src].Store(dev + (diff-dev)/4)
}

// silenceLimit returns the silence (nanoseconds) beyond which dst's view
// of src counts as failure evidence: the configured timeout floor, raised
// by the observed interarrival statistics so a link that is merely slow
// or jittery does not read as dead.
func (t *tcpTransport) silenceLimit(dst, src int) int64 {
	base := t.opts.HeartbeatTimeout.Nanoseconds()
	avg := t.hbAvg[dst][src].Load()
	if avg == 0 {
		return base
	}
	adaptive := avg + 4*t.hbDev[dst][src].Load() + 2*t.opts.HeartbeatInterval.Nanoseconds()
	if adaptive > base {
		return adaptive
	}
	return base
}

// peerGone handles an unexpected disconnect of the src->dst stream.
func (t *tcpTransport) peerGone(dst, src int) {
	select {
	case <-t.closed:
		return // normal teardown
	default:
	}
	if t.world.IsFailed(dst) || t.world.IsFailed(src) {
		return // the corpse is already known
	}
	if t.opts.HeartbeatTimeout > 0 {
		return // the silence monitor decides; the peer may reconnect
	}
	t.world.Fail(src)
}

// heartbeat emits heartbeat frames from rank src to every peer until the
// transport closes or src dies.
func (t *tcpTransport) heartbeat(src int) {
	defer t.wg.Done()
	n := len(t.world.procs)
	buf := make([]byte, frameHeaderLen)
	frameInto(buf, &envelope{ctx: heartbeatCtx, src: src})
	ticker := time.NewTicker(t.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
		}
		if t.world.IsFailed(src) {
			return // corpses do not heartbeat
		}
		if t.silenced[src].Load() {
			continue
		}
		if d := t.hbDelay[src].Load(); d > 0 {
			select {
			case <-t.closed:
				return
			case <-time.After(time.Duration(d)):
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst == src || t.world.IsFailed(dst) || t.hbMute[src*n+dst].Load() {
				continue
			}
			t.writeFrame(src, dst, buf) // errors left to the monitor
		}
	}
}

// monitor watches every rank's silence towards its live peers against the
// adaptive per-pair threshold and disambiguates the verdict: a rank silent
// beyond the limit for ALL live peers is dead (crash — nobody can reach
// it), while a rank silent for some peers but demonstrably alive for
// others is partitioned, declared with FailPartitioned so the error
// surfaced to blocked operations carries FailurePartition instead of
// FailureCrash.
func (t *tcpTransport) monitor() {
	defer t.wg.Done()
	n := len(t.world.procs)
	ticker := time.NewTicker(t.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for src := 0; src < n; src++ {
			if t.world.IsFailed(src) {
				continue
			}
			observers, silent := 0, 0
			for dst := 0; dst < n; dst++ {
				if dst == src || t.world.IsFailed(dst) {
					continue
				}
				observers++
				if now-t.lastSeen[dst][src].Load() > t.silenceLimit(dst, src) {
					silent++
				}
			}
			if observers == 0 || silent == 0 {
				continue
			}
			if silent == observers {
				t.world.Fail(src)
			} else {
				t.world.FailPartitioned(src)
			}
		}
	}
}

// onRankFailed tears down the failed rank's sockets so its peers observe
// the crash on the wire.
func (t *tcpTransport) onRankFailed(rank int) {
	if t.listeners[rank] != nil {
		t.listeners[rank].Close()
	}
	n := len(t.world.procs)
	for other := 0; other < n; other++ {
		if other == rank {
			continue
		}
		t.closePair(rank, other)
		t.closePair(other, rank)
	}
}

// closePair closes the src->dst connection, if any.
func (t *tcpTransport) closePair(src, dst int) {
	n := len(t.world.procs)
	mu := &t.connMu[src*n+dst]
	mu.Lock()
	conn := t.conns[src][dst]
	t.conns[src][dst] = nil
	mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Close tears the mesh down.
func (t *tcpTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		for _, ln := range t.listeners {
			if ln != nil {
				ln.Close()
			}
		}
		for src := range t.conns {
			for dst := range t.conns[src] {
				if dst != src {
					t.closePair(src, dst)
				}
			}
		}
	})
	t.wg.Wait()
	return nil
}
