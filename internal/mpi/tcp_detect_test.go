package mpi

import (
	"testing"
	"time"
)

// TestDefaultTCPOptionsPinned pins the documented defaults: the doc
// comment on DefaultTCPOptions promises 50 ms heartbeats, a 2 s silence
// floor, three re-dials from 10 ms backoff, and a 5 s write deadline. A
// drift here is a doc bug or a silent behaviour change — fail either way.
func TestDefaultTCPOptionsPinned(t *testing.T) {
	got := DefaultTCPOptions()
	want := TCPOptions{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		DialRetries:       3,
		DialBackoff:       10 * time.Millisecond,
		WriteTimeout:      5 * time.Second,
	}
	if got != want {
		t.Fatalf("DefaultTCPOptions() = %+v, want the documented %+v", got, want)
	}
}

// TestTCPNoFalsePositiveUnderHeartbeatDelay: heartbeats delayed by less
// than the documented bound (HeartbeatTimeout - HeartbeatInterval) must
// never produce a failure declaration, and traffic still flows.
func TestTCPNoFalsePositiveUnderHeartbeatDelay(t *testing.T) {
	opts := TCPOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		DialRetries:       2,
		DialBackoff:       10 * time.Millisecond,
		WriteTimeout:      5 * time.Second,
	}
	w, tr := newTestTCP(t, 3, opts)
	// 150 ms of added delay per heartbeat round: well under the 390 ms
	// documented bound, far over the heartbeat interval.
	tr.hbDelay[1].Store(int64(150 * time.Millisecond))
	err := runWithTimeout(t, w, 30*time.Second, func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 0:
			// Outlast several monitor rounds at the delayed cadence before
			// expecting rank 1's message.
			time.Sleep(900 * time.Millisecond)
			data, _ := comm.Recv(1, 7)
			if len(data) != 1 || data[0] != 42 {
				t.Errorf("got %v, want [42]", data)
			}
		case 1:
			time.Sleep(900 * time.Millisecond)
			comm.Send(0, 7, []byte{42})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if w.IsFailed(r) {
			t.Fatalf("rank %d falsely declared failed under delay below the documented bound", r)
		}
	}
}

// TestSilenceLimitAdaptsToObservedJitter feeds the interarrival
// estimators synthetic samples and checks both halves of the adaptive
// threshold's contract: a jittery-but-alive link (gaps regularly past
// the configured floor) raises its own limit above the longest observed
// gap, while a steady fast link stays pinned at the floor.
func TestSilenceLimitAdaptsToObservedJitter(t *testing.T) {
	opts := TCPOptions{
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
	}
	_, tr := newTestTCP(t, 3, opts)
	base := opts.HeartbeatTimeout.Nanoseconds()

	// Link 1->0: alternate 5 ms and 130 ms gaps — the long ones exceed
	// the 100 ms floor, so a fixed threshold would declare a false
	// positive on every other heartbeat.
	now := tr.lastSeen[0][1].Load()
	for i := 0; i < 40; i++ {
		gap := 5 * time.Millisecond
		if i%2 == 1 {
			gap = 130 * time.Millisecond
		}
		now += gap.Nanoseconds()
		tr.observe(0, 1, now)
	}
	limit := tr.silenceLimit(0, 1)
	if limit <= base {
		t.Fatalf("jittery link's limit %v did not rise above the %v floor", time.Duration(limit), time.Duration(base))
	}
	if longest := (130 * time.Millisecond).Nanoseconds(); limit <= longest {
		t.Fatalf("adaptive limit %v does not cover the observed %v gaps", time.Duration(limit), time.Duration(longest))
	}

	// Link 2->0: steady 5 ms gaps — the limit must stay at the floor, so
	// detection latency for genuinely dead fast peers is unchanged.
	now = tr.lastSeen[0][2].Load()
	for i := 0; i < 40; i++ {
		now += (5 * time.Millisecond).Nanoseconds()
		tr.observe(0, 2, now)
	}
	if got := tr.silenceLimit(0, 2); got != base {
		t.Fatalf("steady link's limit = %v, want the %v floor", time.Duration(got), time.Duration(base))
	}
}

// TestTCPMonitorDisambiguatesPartition: a rank silent towards one peer
// but demonstrably alive for the others is a partition, not a crash —
// the surfaced error must carry FailurePartition.
func TestTCPMonitorDisambiguatesPartition(t *testing.T) {
	opts := TCPOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		DialRetries:       2,
		DialBackoff:       10 * time.Millisecond,
		WriteTimeout:      5 * time.Second,
	}
	w, tr := newTestTCP(t, 3, opts)
	n := 3
	// Rank 2 keeps heartbeating to rank 1 but falls silent towards rank 0:
	// an asymmetric partition. (No payload traffic flows 2->0 either.)
	tr.hbMute[2*n+0].Store(true)
	err := runWithTimeout(t, w, 30*time.Second, func(p *Proc) error {
		if p.Rank() == 0 {
			p.CommWorld().Recv(2, 0) // blocks until the monitor's verdict
		}
		return nil
	})
	pf, ok := err.(*ProcessFailedError)
	if !ok {
		t.Fatalf("error = %v, want *ProcessFailedError", err)
	}
	if pf.Rank != 2 {
		t.Fatalf("failed rank = %d, want 2", pf.Rank)
	}
	if pf.Kind != FailurePartition {
		t.Fatalf("failure kind = %v, want FailurePartition (rank 2 was alive for rank 1)", pf.Kind)
	}
	if kind, ok := w.FailedKind(2); !ok || kind != FailurePartition {
		t.Fatalf("world records kind %v/%v for rank 2, want FailurePartition", kind, ok)
	}
	if !IsPartitionError(pf) {
		t.Fatal("IsPartitionError = false for a partition-kind failure")
	}
}
