package mpi

import (
	"testing"
	"time"
)

// newTestTCP builds a TCP world with explicit failure-detection options
// and registers cleanup.
func newTestTCP(t *testing.T, n int, opts TCPOptions) (*World, *tcpTransport) {
	t.Helper()
	c := testCluster(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	w := NewWorld(c, OneProcessPerMachine(c))
	tr, err := newTCPTransport(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return w, tr
}

// TestTCPDisconnectMarksPeerFailed: without heartbeats, a peer whose
// socket closes unexpectedly is marked failed, and a receiver blocked on
// it aborts instead of hanging — the wire-level analogue of World.Fail.
func TestTCPDisconnectMarksPeerFailed(t *testing.T) {
	w, tr := newTestTCP(t, 3, TCPOptions{}) // zero options: EOF is death
	err := runWithTimeout(t, w, 30*time.Second, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.CommWorld().Recv(2, 0) // rank 2 will never send
		case 1:
			// Simulate rank 2 crashing: its outgoing sockets close.
			time.Sleep(20 * time.Millisecond)
			tr.closePair(2, 0)
			tr.closePair(2, 1)
		}
		return nil
	})
	pf, ok := err.(*ProcessFailedError)
	if !ok {
		t.Fatalf("error = %v, want *ProcessFailedError", err)
	}
	if pf.Rank != 2 {
		t.Fatalf("failed rank = %d, want 2", pf.Rank)
	}
	if !w.IsFailed(2) {
		t.Fatal("rank 2 not marked failed after its sockets closed")
	}
}

// TestTCPHeartbeatDetectsSilentPeer: with heartbeats enabled, a rank that
// stops heartbeating (a hung process — sockets stay open) is declared dead
// after the timeout, and blocked receivers abort.
func TestTCPHeartbeatDetectsSilentPeer(t *testing.T) {
	opts := TCPOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
		DialRetries:       2,
		DialBackoff:       10 * time.Millisecond,
		WriteTimeout:      5 * time.Second,
	}
	w, tr := newTestTCP(t, 3, opts)
	err := runWithTimeout(t, w, 30*time.Second, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.CommWorld().Recv(2, 0) // rank 2 hangs instead of sending
		case 1:
			tr.silenced[2].Store(true)
		}
		return nil
	})
	pf, ok := err.(*ProcessFailedError)
	if !ok {
		t.Fatalf("error = %v, want *ProcessFailedError", err)
	}
	if pf.Rank != 2 {
		t.Fatalf("failed rank = %d, want 2", pf.Rank)
	}
}

// TestTCPReconnectAfterTransientDisconnect: with heartbeats enabled, a
// transiently broken connection is re-dialled (bounded, with backoff) and
// the message still arrives; nobody is marked failed.
func TestTCPReconnectAfterTransientDisconnect(t *testing.T) {
	opts := TCPOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Second, // generous: EOF must not kill
		DialRetries:       5,
		DialBackoff:       5 * time.Millisecond,
		WriteTimeout:      5 * time.Second,
	}
	w, tr := newTestTCP(t, 2, opts)
	err := runWithTimeout(t, w, 30*time.Second, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			// Break the 0->1 connection, then send: the transport must
			// re-dial and deliver. Closing the conn makes the next write
			// fail (the kernel may buffer the first one).
			tr.closePair(0, 1)
			comm.Send(1, 0, []byte{1})
			comm.Send(1, 0, []byte{2})
			return nil
		}
		a, _ := comm.Recv(0, 0)
		b, _ := comm.Recv(0, 0)
		if a[0] != 1 || b[0] != 2 {
			t.Errorf("received %v %v, want [1] [2]", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.IsFailed(0) || w.IsFailed(1) {
		t.Fatal("a rank was marked failed after a transient disconnect")
	}
}

// TestTCPFailClosesSockets: injecting a failure tears down the corpse's
// sockets, and survivors' operations abort with *ProcessFailedError over
// the TCP transport exactly as in-process.
func TestTCPFailInjection(t *testing.T) {
	w, _ := newTestTCP(t, 3, DefaultTCPOptions())
	err := runWithTimeout(t, w, 30*time.Second, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.CommWorld().Recv(2, 0)
		case 1:
			time.Sleep(10 * time.Millisecond)
			w.Fail(2)
		}
		return nil
	})
	pf, ok := err.(*ProcessFailedError)
	if !ok {
		t.Fatalf("error = %v, want *ProcessFailedError", err)
	}
	if pf.Rank != 2 {
		t.Fatalf("failed rank = %d, want 2", pf.Rank)
	}
}

// TestTCPDeliverToFailedRankDrops: sends to a failed rank from inside the
// transport are dropped, not retried into a reconnect storm.
func TestTCPDeliverToFailedRank(t *testing.T) {
	w, _ := newTestTCP(t, 2, DefaultTCPOptions())
	w.Fail(1)
	err := runWithTimeout(t, w, 30*time.Second, func(p *Proc) error {
		if p.Rank() == 0 {
			if err := Catch(func() { p.CommWorld().Send(1, 0, []byte{1}) }); err == nil {
				t.Error("Send to failed rank succeeded")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
