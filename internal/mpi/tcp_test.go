package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestTCPTransportBasic(t *testing.T) {
	c := testCluster(3)
	w, closeT, err := NewWorldTCP(c, OneProcessPerMachine(c))
	if err != nil {
		t.Fatal(err)
	}
	defer closeT()
	err = w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		switch p.Rank() {
		case 0:
			comm.Send(1, 7, []byte("over the wire"))
			data, _ := comm.Recv(2, 8)
			if string(data) != "and back" {
				return fmt.Errorf("got %q", data)
			}
		case 1:
			data, st := comm.Recv(0, 7)
			if string(data) != "over the wire" || st.Source != 0 {
				return fmt.Errorf("got %q from %d", data, st.Source)
			}
			comm.Send(2, 9, data)
		case 2:
			data, _ := comm.Recv(1, 9)
			if string(data) != "over the wire" {
				return fmt.Errorf("relay got %q", data)
			}
			comm.Send(0, 8, []byte("and back"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPTransportCollectives(t *testing.T) {
	c := testCluster(5)
	w, closeT, err := NewWorldTCP(c, OneProcessPerMachine(c))
	if err != nil {
		t.Fatal(err)
	}
	defer closeT()
	err = w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		var data []byte
		if comm.Rank() == 2 {
			data = bytes.Repeat([]byte{0xAB}, 4096)
		}
		got := comm.Bcast(2, data)
		if len(got) != 4096 || got[0] != 0xAB {
			return fmt.Errorf("bcast over tcp broken")
		}
		sum := BytesInt64(comm.Allreduce(Int64Bytes([]int64{int64(comm.Rank())}), SumInt64))[0]
		if sum != 10 {
			return fmt.Errorf("allreduce over tcp = %d", sum)
		}
		comm.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPMatchesInProcessTiming is the key property: the transport moves
// bytes differently but the virtual-time results are identical.
func TestTCPMatchesInProcessTiming(t *testing.T) {
	program := func(p *Proc) error {
		comm := p.CommWorld()
		p.Compute(float64(5 * (p.Rank() + 1)))
		right := (comm.Rank() + 1) % comm.Size()
		left := (comm.Rank() - 1 + comm.Size()) % comm.Size()
		for i := 0; i < 10; i++ {
			comm.Sendrecv(right, i, make([]byte, 10_000), left, i)
		}
		comm.Barrier()
		_ = comm.Allgather([]byte{byte(comm.Rank())})
		return nil
	}

	c := testCluster(4)
	inproc := NewWorld(c, OneProcessPerMachine(c))
	if err := inproc.Run(program); err != nil {
		t.Fatal(err)
	}

	tcp, closeT, err := NewWorldTCP(c, OneProcessPerMachine(c))
	if err != nil {
		t.Fatal(err)
	}
	defer closeT()
	if err := tcp.Run(program); err != nil {
		t.Fatal(err)
	}

	if inproc.Makespan() != tcp.Makespan() {
		t.Fatalf("virtual times differ: in-process %v, tcp %v", inproc.Makespan(), tcp.Makespan())
	}
	for r := 0; r < 4; r++ {
		a, b := inproc.procs[r].clock.Now(), tcp.procs[r].clock.Now()
		if a != b {
			t.Fatalf("rank %d clocks differ: %v vs %v", r, a, b)
		}
	}
}

func TestTCPNonOvertaking(t *testing.T) {
	c := testCluster(2)
	w, closeT, err := NewWorldTCP(c, OneProcessPerMachine(c))
	if err != nil {
		t.Fatal(err)
	}
	defer closeT()
	const n = 200
	err = w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				comm.Send(1, 0, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				data, _ := comm.Recv(0, 0)
				if data[0] != byte(i) {
					return fmt.Errorf("message %d overtaken by %d", i, data[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPSingleProcess(t *testing.T) {
	c := testCluster(1)
	w, closeT, err := NewWorldTCP(c, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	defer closeT()
	err = w.Run(func(p *Proc) error {
		p.Compute(10)
		p.CommWorld().Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	c := testCluster(2)
	_, closeT, err := NewWorldTCP(c, OneProcessPerMachine(c))
	if err != nil {
		t.Fatal(err)
	}
	if err := closeT(); err != nil {
		t.Fatal(err)
	}
	if err := closeT(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRejectsBadPeerHeader(t *testing.T) {
	// Connecting to a rank's listener with a bogus source rank must not
	// corrupt the mesh; the accept loop reports the violation during
	// setup only if it arrives before the real peers, so instead verify
	// the pump drops a connection whose frames lie about their source.
	c := testCluster(2)
	w, closeT, err := NewWorldTCP(c, OneProcessPerMachine(c))
	if err != nil {
		t.Fatal(err)
	}
	defer closeT()
	// Normal traffic still works after setup.
	err = w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.Send(1, 0, []byte("x"))
		} else {
			data, _ := comm.Recv(0, 0)
			if string(data) != "x" {
				return fmt.Errorf("got %q", data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	c := testCluster(2)
	w, closeT, err := NewWorldTCP(c, OneProcessPerMachine(c))
	if err != nil {
		t.Fatal(err)
	}
	defer closeT()
	payload := bytes.Repeat([]byte{0x5A}, 4<<20) // 4 MiB frame
	err = w.Run(func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.SendOwned(1, 0, payload)
		} else {
			data, _ := comm.Recv(0, 0)
			if len(data) != len(payload) || data[0] != 0x5A || data[len(data)-1] != 0x5A {
				return fmt.Errorf("large frame corrupted: %d bytes", len(data))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
