package mpi

import "fmt"

// Cartesian process topologies (MPI_Cart_create and friends): a structured
// view of a communicator as an n-dimensional grid, the abstraction the
// matrix-multiplication application's m×m processor grid is built on.

// CartComm is a communicator with an attached Cartesian topology.
type CartComm struct {
	*Comm
	dims     []int
	periodic []bool
}

// CartCreate attaches a Cartesian topology to the communicator
// (MPI_Cart_create with reorder=false): the product of dims must not
// exceed the communicator size; processes with rank >= product receive
// nil, the others a CartComm. Collective in MPI; here the topology is
// derived locally from the communicator, so no communication is needed —
// but all members must still call it with equal arguments, as in MPI.
func (c *Comm) CartCreate(dims []int, periodic []bool) *CartComm {
	if len(dims) == 0 {
		panic("mpi: CartCreate with no dimensions")
	}
	if len(periodic) != len(dims) {
		panic(fmt.Sprintf("mpi: CartCreate got %d periodicity flags for %d dims", len(periodic), len(dims)))
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("mpi: CartCreate dimension %d not positive", d))
		}
		total *= d
	}
	if total > c.Size() {
		panic(fmt.Sprintf("mpi: CartCreate grid of %d processes on a communicator of %d", total, c.Size()))
	}
	sub := c.Split(boolToColor(c.Rank() < total), c.Rank())
	if c.Rank() >= total {
		return nil
	}
	return &CartComm{
		Comm:     sub,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}
}

func boolToColor(b bool) int {
	if b {
		return 1
	}
	return Undefined
}

// Dims returns the grid extents.
func (cc *CartComm) Dims() []int { return append([]int(nil), cc.dims...) }

// Coords returns the Cartesian coordinates of the given rank
// (MPI_Cart_coords; row-major, first dimension slowest).
func (cc *CartComm) Coords(rank int) []int {
	cc.checkRank("Coords", rank)
	out := make([]int, len(cc.dims))
	rem := rank
	for i := len(cc.dims) - 1; i >= 0; i-- {
		out[i] = rem % cc.dims[i]
		rem /= cc.dims[i]
	}
	return out
}

// RankOf returns the rank at the given coordinates (MPI_Cart_rank).
// Periodic dimensions wrap; out-of-range coordinates on non-periodic
// dimensions return -1 (MPI_PROC_NULL).
func (cc *CartComm) RankOf(coords []int) int {
	if len(coords) != len(cc.dims) {
		panic(fmt.Sprintf("mpi: RankOf got %d coordinates for %d dims", len(coords), len(cc.dims)))
	}
	rank := 0
	for i, c := range coords {
		d := cc.dims[i]
		if cc.periodic[i] {
			c = ((c % d) + d) % d
		} else if c < 0 || c >= d {
			return -1
		}
		rank = rank*d + c
	}
	return rank
}

// Shift returns the source and destination ranks for a displacement along
// one dimension (MPI_Cart_shift): src is the neighbour the caller would
// receive from, dst the one it would send to. Either is -1 off a
// non-periodic edge.
func (cc *CartComm) Shift(dim, disp int) (src, dst int) {
	if dim < 0 || dim >= len(cc.dims) {
		panic(fmt.Sprintf("mpi: Shift dimension %d out of range", dim))
	}
	me := cc.Coords(cc.Rank())
	up := append([]int(nil), me...)
	up[dim] += disp
	down := append([]int(nil), me...)
	down[dim] -= disp
	return cc.RankOf(down), cc.RankOf(up)
}

// Sub builds lower-dimensional subgrids (MPI_Cart_sub): keep[i] marks the
// dimensions retained; processes sharing the dropped coordinates form one
// subgrid communicator. Collective over the Cartesian communicator.
func (cc *CartComm) Sub(keep []bool) *CartComm {
	if len(keep) != len(cc.dims) {
		panic(fmt.Sprintf("mpi: Sub got %d flags for %d dims", len(keep), len(cc.dims)))
	}
	me := cc.Coords(cc.Rank())
	color := 0
	key := 0
	var newDims []int
	var newPeriodic []bool
	for i := range cc.dims {
		if keep[i] {
			key = key*cc.dims[i] + me[i]
			newDims = append(newDims, cc.dims[i])
			newPeriodic = append(newPeriodic, cc.periodic[i])
		} else {
			color = color*cc.dims[i] + me[i]
		}
	}
	if len(newDims) == 0 {
		newDims = []int{1}
		newPeriodic = []bool{false}
	}
	sub := cc.Split(color, key)
	return &CartComm{Comm: sub, dims: newDims, periodic: newPeriodic}
}
