package mpi

import (
	"fmt"
	"testing"
)

func TestCartCreateShape(t *testing.T) {
	w := newTestWorld(t, 7) // 2x3 grid on 7 processes: one left over
	runWorld(t, w, func(p *Proc) error {
		cart := p.CommWorld().CartCreate([]int{2, 3}, []bool{false, true})
		if p.Rank() == 6 {
			if cart != nil {
				return fmt.Errorf("excess process got a grid")
			}
			return nil
		}
		if cart == nil {
			return fmt.Errorf("rank %d got nil grid", p.Rank())
		}
		if cart.Size() != 6 {
			return fmt.Errorf("grid size %d", cart.Size())
		}
		got := cart.Dims()
		if got[0] != 2 || got[1] != 3 {
			return fmt.Errorf("dims %v", got)
		}
		// Row-major coordinates.
		coords := cart.Coords(cart.Rank())
		if want := []int{cart.Rank() / 3, cart.Rank() % 3}; coords[0] != want[0] || coords[1] != want[1] {
			return fmt.Errorf("rank %d coords %v, want %v", cart.Rank(), coords, want)
		}
		// Round trip.
		if cart.RankOf(coords) != cart.Rank() {
			return fmt.Errorf("RankOf(Coords) != rank")
		}
		return nil
	})
}

func TestCartShift(t *testing.T) {
	w := newTestWorld(t, 6)
	runWorld(t, w, func(p *Proc) error {
		cart := p.CommWorld().CartCreate([]int{2, 3}, []bool{false, true})
		i, j := cart.Rank()/3, cart.Rank()%3
		// Dimension 0 is non-periodic: shifts fall off the edges.
		src, dst := cart.Shift(0, 1)
		wantDst := -1
		if i+1 < 2 {
			wantDst = (i+1)*3 + j
		}
		wantSrc := -1
		if i-1 >= 0 {
			wantSrc = (i-1)*3 + j
		}
		if src != wantSrc || dst != wantDst {
			return fmt.Errorf("rank %d dim0 shift = (%d,%d), want (%d,%d)", cart.Rank(), src, dst, wantSrc, wantDst)
		}
		// Dimension 1 is periodic: shifts wrap.
		src, dst = cart.Shift(1, 1)
		if dst != i*3+(j+1)%3 || src != i*3+(j+2)%3 {
			return fmt.Errorf("rank %d dim1 shift = (%d,%d)", cart.Rank(), src, dst)
		}
		return nil
	})
}

func TestCartNeighbourExchange(t *testing.T) {
	// A periodic ring exchange along dimension 1 using Shift.
	w := newTestWorld(t, 6)
	runWorld(t, w, func(p *Proc) error {
		cart := p.CommWorld().CartCreate([]int{2, 3}, []bool{false, true})
		src, dst := cart.Shift(1, 1)
		data, _ := cart.Sendrecv(dst, 0, []byte{byte(cart.Rank())}, src, 0)
		if int(data[0]) != src {
			return fmt.Errorf("rank %d received from %d, want %d", cart.Rank(), data[0], src)
		}
		return nil
	})
}

func TestCartSubRowsAndColumns(t *testing.T) {
	// Split a 2x3 grid into row communicators and column communicators —
	// the idiom the MM algorithm's broadcasts are built on.
	w := newTestWorld(t, 6)
	runWorld(t, w, func(p *Proc) error {
		cart := p.CommWorld().CartCreate([]int{2, 3}, []bool{false, false})
		i, j := cart.Rank()/3, cart.Rank()%3

		rows := cart.Sub([]bool{false, true}) // keep dim 1: row comms
		if rows.Size() != 3 || rows.Rank() != j {
			return fmt.Errorf("row comm size %d rank %d, want 3 %d", rows.Size(), rows.Rank(), j)
		}
		cols := cart.Sub([]bool{true, false}) // keep dim 0: column comms
		if cols.Size() != 2 || cols.Rank() != i {
			return fmt.Errorf("col comm size %d rank %d, want 2 %d", cols.Size(), cols.Rank(), i)
		}
		// A broadcast along each row reaches exactly the row.
		got := rows.Bcast(0, []byte{byte(i*10 + 1)})
		if got[0] != byte(i*10+1) {
			return fmt.Errorf("row bcast leaked across rows: %v", got)
		}
		return nil
	})
}

func TestCartValidation(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(p *Proc) error {
		defer func() { recover() }()
		p.CommWorld().CartCreate([]int{5}, []bool{false}) // 5 > 4
		return fmt.Errorf("oversized grid accepted")
	})
	if err != nil {
		t.Fatal(err)
	}
}
