package mpi

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/vclock"
)

// Execution tracing: an optional recorder of per-process activity
// intervals in virtual time. Traces make the behaviour of a group visible
// — where the slow machine stalls its neighbours, how collectives fan out
// — and back the Gantt view of `hmpirun -trace`.

// EventKind classifies trace events.
type EventKind string

// Event kinds.
const (
	EventCompute EventKind = "compute"
	EventSend    EventKind = "send"
	EventRecv    EventKind = "recv"
)

// TraceEvent is one activity interval of one process.
type TraceEvent struct {
	Rank  int
	Kind  EventKind
	Start vclock.Time
	End   vclock.Time
	Peer  int // communication partner (world rank), -1 for compute
	Bytes int
	Tag   int
}

// Trace collects events from all processes of a world.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// EnableTracing attaches a recorder to the world and returns it. Call
// before Run.
func (w *World) EnableTracing() *Trace {
	tr := &Trace{}
	w.trace = tr
	return tr
}

func (tr *Trace) add(e TraceEvent) {
	tr.mu.Lock()
	tr.events = append(tr.events, e)
	tr.mu.Unlock()
}

// Events returns the recorded events sorted by start time (rank breaks
// ties).
func (tr *Trace) Events() []TraceEvent {
	tr.mu.Lock()
	out := append([]TraceEvent(nil), tr.events...)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Summary aggregates per-rank busy time by kind.
func (tr *Trace) Summary(numRanks int) map[EventKind][]float64 {
	out := map[EventKind][]float64{
		EventCompute: make([]float64, numRanks),
		EventSend:    make([]float64, numRanks),
		EventRecv:    make([]float64, numRanks),
	}
	for _, e := range tr.Events() {
		out[e.Kind][e.Rank] += float64(e.End - e.Start)
	}
	return out
}

// Gantt renders a text timeline: one row per rank, `width` columns across
// the makespan; c = computing, s = sending, r = receiving (waiting
// included), . = idle. Overlapping activities favour compute > send >
// recv.
func (tr *Trace) Gantt(w io.Writer, numRanks, width int) error {
	events := tr.Events()
	var makespan vclock.Time
	for _, e := range events {
		if e.End > makespan {
			makespan = e.End
		}
	}
	if makespan == 0 || width <= 0 {
		_, err := fmt.Fprintln(w, "(no activity)")
		return err
	}
	rows := make([][]byte, numRanks)
	for r := range rows {
		rows[r] = []byte(strings.Repeat(".", width))
	}
	glyph := map[EventKind]byte{EventCompute: 'c', EventSend: 's', EventRecv: 'r'}
	rank3 := map[byte]int{'c': 3, 's': 2, 'r': 1, '.': 0}
	for _, e := range events {
		lo := int(float64(e.Start) / float64(makespan) * float64(width))
		hi := int(float64(e.End) / float64(makespan) * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		g := glyph[e.Kind]
		for i := lo; i < hi; i++ {
			if rank3[g] > rank3[rows[e.Rank][i]] {
				rows[e.Rank][i] = g
			}
		}
	}
	if _, err := fmt.Fprintf(w, "virtual time 0 .. %.4gs  (c=compute s=send r=recv/wait .=idle)\n", float64(makespan)); err != nil {
		return err
	}
	for r, row := range rows {
		if _, err := fmt.Fprintf(w, "rank %2d |%s|\n", r, row); err != nil {
			return err
		}
	}
	return nil
}
