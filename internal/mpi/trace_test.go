package mpi

import (
	"strings"
	"testing"
)

func TestTraceRecordsActivity(t *testing.T) {
	w := newTestWorld(t, 2)
	tr := w.EnableTracing()
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			p.Compute(10)
			comm.Send(1, 5, make([]byte, 1000))
		} else {
			comm.Recv(0, 5)
		}
		return nil
	})
	events := tr.Events()
	var compute, send, recv int
	for _, e := range events {
		switch e.Kind {
		case EventCompute:
			compute++
			if e.Rank != 0 || e.End-e.Start <= 0 {
				t.Errorf("bad compute event %+v", e)
			}
		case EventSend:
			send++
			if e.Peer != 1 || e.Bytes != 1000 || e.Tag != 5 {
				t.Errorf("bad send event %+v", e)
			}
		case EventRecv:
			recv++
			if e.Rank != 1 || e.Peer != 0 {
				t.Errorf("bad recv event %+v", e)
			}
		}
	}
	if compute != 1 || send != 1 || recv != 1 {
		t.Fatalf("event counts: compute %d send %d recv %d", compute, send, recv)
	}
	// Events are sorted by start time.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("events not sorted")
		}
	}
}

func TestTraceSummary(t *testing.T) {
	w := newTestWorld(t, 2)
	tr := w.EnableTracing()
	runWorld(t, w, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Compute(10) // 1 s on machine 0 (speed 10)
			p.Compute(10)
		}
		return nil
	})
	sum := tr.Summary(2)
	if got := sum[EventCompute][0]; got != 2 {
		t.Fatalf("compute time rank 0 = %v, want 2", got)
	}
	if got := sum[EventCompute][1]; got != 0 {
		t.Fatalf("compute time rank 1 = %v, want 0", got)
	}
}

func TestTraceGantt(t *testing.T) {
	w := newTestWorld(t, 2)
	tr := w.EnableTracing()
	runWorld(t, w, func(p *Proc) error {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			p.Compute(100)
			comm.Send(1, 0, make([]byte, 500_000))
		} else {
			comm.Recv(0, 0)
			p.Compute(50)
		}
		return nil
	})
	var sb strings.Builder
	if err := tr.Gantt(&sb, 2, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rank  0 |") || !strings.Contains(out, "rank  1 |") {
		t.Fatalf("gantt missing rows:\n%s", out)
	}
	if !strings.Contains(out, "c") || !strings.Contains(out, "r") {
		t.Fatalf("gantt missing glyphs:\n%s", out)
	}
	// Rank 1 waits (r) while rank 0 computes (c): the first column of
	// rank 0 must be 'c'.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	row0 := lines[1][strings.Index(lines[1], "|")+1:]
	if row0[0] != 'c' {
		t.Fatalf("rank 0 row starts with %q:\n%s", row0[0], out)
	}
}

func TestTraceGanttEmpty(t *testing.T) {
	tr := &Trace{}
	var sb strings.Builder
	if err := tr.Gantt(&sb, 1, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no activity") {
		t.Fatalf("empty gantt: %q", sb.String())
	}
}
