// Package mpi is a message-passing library in the spirit of MPI-1,
// implemented in pure Go. Processes run as goroutines inside one address
// space; every process carries a virtual clock that is charged for
// computation (according to the speed and external load of the machine the
// process is placed on) and for communication (according to the latency,
// bandwidth and protocol of the link between the two machines involved).
//
// The library provides the MPI features the HMPI runtime is layered on:
// groups with the full set of constructors (include/exclude/range/set
// operations), communicators with context-based message isolation,
// point-to-point operations with tag and source wildcards and non-blocking
// variants, and the classic collectives.
//
// Timing model (LogGP-flavoured, switched network):
//
//   - Compute(v) on process p advances p's clock by the time machine(p)
//     needs for v benchmark units under its external load profile.
//   - Send of n bytes charges the sender o + n/B (overhead plus
//     store-and-forward serialisation on the sender's interface, which
//     transmits one message at a time); the message arrives at
//     sendEnd + L. Isend charges only o; the transfer occupies the
//     interface in the background.
//   - Recv blocks until a matching message exists, moves the receiver's
//     clock to at least the arrival time, and charges o.
//   - Distinct machine pairs transfer in parallel (switched Ethernet); a
//     single machine's interface serialises its outgoing transfers.
//
// Clocks interact only through messages, so no global event queue is
// needed and the simulation parallelises across real OS threads.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/hnoc"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// World is one parallel run: a set of processes placed on the machines of a
// cluster. Create it with NewWorld, execute a program with Run.
type World struct {
	cluster *hnoc.Cluster
	place   []int // world rank -> machine index
	procs   []*Proc

	ctxMu   sync.Mutex
	nextCtx int64
	ctxTab  map[ctxKey]int64

	failedMu sync.RWMutex
	failed   map[int]bool        // world ranks marked failed (fault injection)
	failKind map[int]FailureKind // why each failed rank is unreachable

	// failHooks run after a rank is marked failed: transports close the
	// rank's sockets, the HMPI runtime removes it from the free pool and
	// marks its machine dead. Registered before Run.
	hookMu    sync.Mutex
	failHooks []func(rank int)

	// revoked holds the context ids of revoked communicators (ULFM
	// extension, see ft.go).
	revMu   sync.RWMutex
	revoked map[int64]bool

	// agreeTab holds in-flight failure agreements (ft.go).
	agreeMu   sync.Mutex
	agreeCond *sync.Cond
	agreeTab  map[ctxKey]*agreeState

	// tick, when non-nil, observes every operation boundary of every
	// process: the hook through which a chaos schedule kills a process
	// when its own virtual clock passes the scheduled instant.
	tick func(p *Proc)

	// deliver routes an envelope to a destination's mailbox. The default
	// is the in-process path; NewWorldTCP substitutes a real network
	// transport.
	deliver func(dst int, e *envelope)

	// wireTransport is set by transports whose deliver serialises the
	// payload before returning (TCP): sendCommon can then skip its
	// defensive copy for non-self sends.
	wireTransport bool

	// collTuning is the collective algorithm policy communicators inherit
	// at creation (nil means DefaultCollTuning). Set before Run via
	// SetCollTuning.
	collTuning *CollTuning

	// trace, when non-nil, records per-process activity intervals.
	trace *Trace

	// rec, when non-nil, is the structured event recorder of the
	// observability subsystem (internal/trace); see recorder.go.
	rec *trace.Recorder

	// linkFilter, when non-nil, adjudicates every frame crossing a link:
	// the chaos engine's injection point for drops, duplicates, delays and
	// partitions (see reliable.go). Installed before Run.
	linkFilter LinkFilter
	// retry is the retransmit policy the reliable-delivery path applies
	// when the filter drops a frame.
	retry RetryPolicy
	// linkMu guards linkStats and degradeWatch.
	linkMu       sync.Mutex
	linkStats    map[linkPair]*LinkStats
	degradeWatch func(src, dst int, st LinkStats)
}

type ctxKey struct {
	parent int64
	seq    int64
}

// NewWorld creates a world of len(placement) processes; placement[r] is the
// machine index (into cluster.Machines) that process r runs on. Several
// processes may share a machine. NewWorld panics on invalid placement;
// configuration errors in the cluster surface via Cluster.Validate, which
// callers should run first.
func NewWorld(cluster *hnoc.Cluster, placement []int) *World {
	if len(placement) == 0 {
		panic("mpi: empty placement")
	}
	for r, m := range placement {
		if m < 0 || m >= cluster.Size() {
			panic(fmt.Sprintf("mpi: placement[%d] = %d out of range [0,%d)", r, m, cluster.Size()))
		}
	}
	w := &World{
		cluster:  cluster,
		place:    append([]int(nil), placement...),
		nextCtx:  1,
		ctxTab:   make(map[ctxKey]int64),
		failed:   make(map[int]bool),
		failKind: make(map[int]FailureKind),
		revoked:  make(map[int64]bool),
		agreeTab: make(map[ctxKey]*agreeState),
	}
	w.agreeCond = sync.NewCond(&w.agreeMu)
	for r := range placement {
		w.procs = append(w.procs, newProc(w, r))
	}
	w.deliver = func(dst int, e *envelope) { w.procs[dst].mbox.put(e) }
	return w
}

// OneProcessPerMachine builds the placement the paper assumes: process r on
// machine r.
func OneProcessPerMachine(cluster *hnoc.Cluster) []int {
	place := make([]int, cluster.Size())
	for i := range place {
		place[i] = i
	}
	return place
}

// Size returns the number of processes in the world.
func (w *World) Size() int { return len(w.procs) }

// SetCollTuning installs the collective algorithm policy every
// communicator of this world inherits (CommWorld and everything derived
// from it). Passing nil restores the default policy. Call before Run;
// every process must observe the same policy or collectives would
// disagree on their communication pattern and deadlock.
func (w *World) SetCollTuning(t *CollTuning) { w.collTuning = t }

// Cluster returns the cluster the world runs on.
func (w *World) Cluster() *hnoc.Cluster { return w.cluster }

// MachineOf returns the machine index process rank runs on.
func (w *World) MachineOf(rank int) int { return w.place[rank] }

// Placement returns a copy of the rank-to-machine map.
func (w *World) Placement() []int { return append([]int(nil), w.place...) }

// contextStride is the id space reserved per allocation: a Split derives
// one sub-context per color from its base id, so the base ids of distinct
// allocations must be at least the maximum color count apart.
const contextStride = 1 << 24

// allocContext returns the base context id for the seq'th derived
// communicator of parent. All members of a collective call compute the same
// (parent, seq) key, so they all receive the same id; the first caller
// allocates.
func (w *World) allocContext(parent, seq int64) int64 {
	w.ctxMu.Lock()
	defer w.ctxMu.Unlock()
	k := ctxKey{parent, seq}
	if id, ok := w.ctxTab[k]; ok {
		return id
	}
	w.nextCtx += contextStride
	w.ctxTab[k] = w.nextCtx
	return w.nextCtx
}

// Fail marks a process as failed (fault-tolerance extension): subsequent
// communication with it panics with a *ProcessFailedError, which Run
// converts into an error return on the communicating process. Fail is
// idempotent; after marking it runs the registered failure hooks and wakes
// every blocked operation so survivors observe the failure.
func (w *World) Fail(rank int) { w.failWithKind(rank, FailureCrash) }

// FailPartitioned marks a process unreachable due to a suspected network
// partition rather than a crash: the rank is excised exactly as by Fail,
// but the *ProcessFailedError surfaced to its peers carries
// FailurePartition, so recovery code can distinguish a machine that died
// from one that is merely cut off (and may come back).
func (w *World) FailPartitioned(rank int) { w.failWithKind(rank, FailurePartition) }

func (w *World) failWithKind(rank int, kind FailureKind) {
	w.failedMu.Lock()
	if w.failed[rank] {
		w.failedMu.Unlock()
		return
	}
	w.failed[rank] = true
	w.failKind[rank] = kind
	w.failedMu.Unlock()
	w.procs[rank].mbox.close(kind)
	// Wake every blocked receiver so it can notice the failure.
	for _, p := range w.procs {
		p.mbox.notify()
	}
	// Wake agreements waiting for the failed rank's arrival.
	w.agreeMu.Lock()
	w.agreeCond.Broadcast()
	w.agreeMu.Unlock()
	w.hookMu.Lock()
	hooks := append([]func(rank int){}, w.failHooks...)
	w.hookMu.Unlock()
	for _, h := range hooks {
		h(rank)
	}
}

// OnFail registers a hook invoked (once) after a rank is marked failed.
// Transports use it to tear down the rank's connections; the HMPI runtime
// uses it to retire the rank's processor. Register before Run.
func (w *World) OnFail(hook func(rank int)) {
	w.hookMu.Lock()
	w.failHooks = append(w.failHooks, hook)
	w.hookMu.Unlock()
}

// SetFaultHook installs an observer called at every operation boundary
// (compute, send, receive) of every process, with the process's rank and
// current virtual time. The chaos package uses it to trigger scheduled
// failures deterministically in virtual time. Install before Run.
func (w *World) SetFaultHook(f func(rank int, now vclock.Time)) {
	if f == nil {
		w.tick = nil
		return
	}
	w.tick = func(p *Proc) { f(p.rank, p.clock.Now()) }
}

// opTick invokes the fault hook, if any, for the given process.
func (p *Proc) opTick() {
	if t := p.world.tick; t != nil {
		t(p)
	}
}

// IsFailed reports whether a world rank has been failed.
func (w *World) IsFailed(rank int) bool {
	w.failedMu.RLock()
	defer w.failedMu.RUnlock()
	return w.failed[rank]
}

// FailedKind returns why a failed rank is unreachable (crash or suspected
// partition). For a rank that has not failed it returns FailureCrash and
// false.
func (w *World) FailedKind(rank int) (FailureKind, bool) {
	w.failedMu.RLock()
	defer w.failedMu.RUnlock()
	if !w.failed[rank] {
		return FailureCrash, false
	}
	return w.failKind[rank], true
}

// failedError builds the error for communication with a failed rank,
// carrying the recorded failure kind.
func (w *World) failedError(rank int) *ProcessFailedError {
	kind, _ := w.FailedKind(rank)
	return &ProcessFailedError{Rank: rank, Kind: kind}
}

// FailureKind disambiguates why a peer is unreachable: a crashed process
// (the classic crash-stop model) or a suspected network partition — the
// peer may be healthy but traffic to it no longer gets through. Recovery
// treats both by excising the rank, but the distinction matters to the
// layer above: a partitioned machine should be routed around, not written
// off.
type FailureKind int

const (
	// FailureCrash: the process is dead (socket closed, heartbeat silence
	// towards every peer, or injected kill).
	FailureCrash FailureKind = iota
	// FailurePartition: the process is unreachable but not provably dead
	// (retransmissions exhausted on a live peer, or heartbeat silence
	// towards only some peers while others still hear it).
	FailurePartition
)

func (k FailureKind) String() string {
	if k == FailurePartition {
		return "partition"
	}
	return "crash"
}

// ProcessFailedError reports communication with a failed process. Kind
// distinguishes a crashed peer from one cut off by a suspected network
// partition; consume it with FailureKindOf or IsPartitionError.
type ProcessFailedError struct {
	Rank int         // world rank of the failed process
	Kind FailureKind // why the process is unreachable
}

func (e *ProcessFailedError) Error() string {
	if e.Kind == FailurePartition {
		return fmt.Sprintf("mpi: process %d is unreachable (suspected network partition)", e.Rank)
	}
	return fmt.Sprintf("mpi: process %d has failed", e.Rank)
}

// Run executes main on every process of the world concurrently and waits
// for all of them. It returns the first error returned by any process
// (panics inside a process, including communication with failed processes,
// are recovered and reported as errors). Run may be called once per World.
func (w *World) Run(main func(p *Proc) error) error {
	errs := make([]error, len(w.procs))
	var wg sync.WaitGroup
	for _, p := range w.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					switch e := r.(type) {
					case *ProcessFailedError:
						// A process that trips over its own failure is a
						// corpse: it died, it does not also report an
						// error — the failure surfaces on its peers.
						if e.Rank != p.rank {
							errs[p.rank] = e
						}
					case *KilledError:
						// Killed by fault injection: a silent death.
					case *RevokedError:
						errs[p.rank] = e
					default:
						errs[p.rank] = fmt.Errorf("mpi: process %d panicked: %v", p.rank, r)
					}
				}
			}()
			errs[p.rank] = main(p)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Makespan returns the maximum final virtual clock across processes: the
// simulated execution time of the run. Call after Run returns.
func (w *World) Makespan() vclock.Time {
	var max vclock.Time
	for _, p := range w.procs {
		if t := p.clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// MakespanOf returns the maximum final clock over the given world ranks.
func (w *World) MakespanOf(ranks []int) vclock.Time {
	var max vclock.Time
	for _, r := range ranks {
		if t := w.procs[r].clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// Stats aggregates the per-process statistics of the run.
func (w *World) Stats() []Stats {
	out := make([]Stats, len(w.procs))
	for i, p := range w.procs {
		out[i] = p.stats
	}
	return out
}

// Proc is the per-process handle: the view one simulated process has of the
// world. It is the receiver of all communication operations through the
// communicators derived from it. A Proc is confined to the goroutine Run
// started for it.
type Proc struct {
	world   *World
	rank    int
	machine int
	clock   vclock.Clock
	nicOut  vclock.NIC
	mbox    mailbox
	stats   Stats

	commWorld *Comm
	reqSeq    int64

	// eng is the progress engine: the rank's pending nonblocking
	// operations, advanced opportunistically whenever the rank enters any
	// MPI call (see request.go).
	eng progressState
	// reqID numbers the rank's nonblocking requests from 1; trace events
	// carry it so verifiers can follow a request's lifecycle.
	reqID int64

	// lastRecvAnySrc records whether the most recently matched receive on
	// this rank was posted with AnySource. Written and read only by the
	// rank's own goroutine, between matching an envelope and applying its
	// receive timing; finishRecvTiming folds it into the recv event's A1
	// so trace analyses can tell wildcard matches from directed ones.
	lastRecvAnySrc bool
}

// Stats counts the work a process performed.
type Stats struct {
	ComputeUnits float64     // benchmark units executed
	ComputeTime  vclock.Time // virtual seconds spent computing
	BytesSent    int64
	BytesRecv    int64
	MsgsSent     int64
	MsgsRecv     int64
}

func newProc(w *World, rank int) *Proc {
	p := &Proc{world: w, rank: rank, machine: w.place[rank]}
	p.mbox.init()
	p.mbox.owner = rank
	return p
}

// Rank returns the process's world rank.
func (p *Proc) Rank() int { return p.rank }

// WorldSize returns the number of processes in the world.
func (p *Proc) WorldSize() int { return p.world.Size() }

// World returns the world the process belongs to.
func (p *Proc) World() *World { return p.world }

// Machine returns the index of the machine the process runs on.
func (p *Proc) Machine() int { return p.machine }

// Now returns the process's current virtual time.
func (p *Proc) Now() vclock.Time { return p.clock.Now() }

// Stats returns the process's work counters so far.
func (p *Proc) Stats() Stats { return p.stats }

// Compute advances the process's virtual clock by the time its machine
// needs to execute `units` benchmark units of computation, honouring the
// machine's external load profile. It is the hook through which
// applications report their computation volume to the simulation.
func (p *Proc) Compute(units float64) {
	if units < 0 {
		panic(fmt.Sprintf("mpi: negative compute volume %v", units))
	}
	if units == 0 {
		return
	}
	m := &p.world.cluster.Machines[p.machine]
	start := p.clock.Now()
	end := vclock.Time(m.ComputeFinish(float64(start), units))
	p.clock.Set(end)
	p.stats.ComputeUnits += units
	p.stats.ComputeTime += end - start
	if tr := p.world.trace; tr != nil {
		tr.add(TraceEvent{Rank: p.rank, Kind: EventCompute, Start: start, End: end, Peer: -1})
	}
	if r := p.world.rec; r != nil {
		wall := r.NowNS()
		r.Emit(p.rank, trace.Event{
			Rank: int32(p.rank), Kind: trace.KindCompute, Peer: -1,
			Start: start, End: end, WallStart: wall, WallEnd: wall,
		})
	}
	p.opTick()
}

// CommWorld returns the communicator spanning all processes, the analogue
// of MPI_COMM_WORLD. Within HMPI programs it backs HMPI_COMM_WORLD.
func (p *Proc) CommWorld() *Comm {
	if p.commWorld == nil {
		members := make([]int, p.world.Size())
		for i := range members {
			members[i] = i
		}
		p.commWorld = &Comm{
			p:      p,
			s:      &commShared{id: 0, members: members},
			rank:   p.rank,
			group:  &Group{ranks: members},
			tuning: p.world.collTuning,
		}
	}
	return p.commWorld
}
