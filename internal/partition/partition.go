// Package partition implements the heterogeneous data-partitioning
// algorithms the paper's applications rest on: proportional 1-D
// partitioning, and the 2-D generalised-block partitioning of Kalinov and
// Lastovetsky ("Heterogeneous Distribution of Computations Solving Linear
// Algebra Problems on Networks of Heterogeneous Computers", reference [6]
// of the paper), in which each l×l generalised block of a matrix is cut
// into column slices proportional to processor-column speeds and each
// column slice into rectangles proportional to individual processor
// speeds.
package partition

import (
	"fmt"
	"sort"
)

// Proportional1D splits total items among parties proportionally to their
// speeds: the returned shares sum to total and each share differs from the
// exact proportional value by less than one item (largest-remainder
// rounding, ties broken by lower index). Speeds must be positive.
func Proportional1D(total int, speeds []float64) ([]int, error) {
	if total < 0 {
		return nil, fmt.Errorf("partition: negative total %d", total)
	}
	if len(speeds) == 0 {
		return nil, fmt.Errorf("partition: no speeds")
	}
	var sum float64
	for i, s := range speeds {
		if s <= 0 {
			return nil, fmt.Errorf("partition: speed[%d] = %v is not positive", i, s)
		}
		sum += s
	}
	shares := make([]int, len(speeds))
	fracs := make([]float64, len(speeds))
	assigned := 0
	for i, s := range speeds {
		exact := float64(total) * s / sum
		shares[i] = int(exact)
		fracs[i] = exact - float64(shares[i])
		assigned += shares[i]
	}
	// Distribute the remainder to the largest fractional parts.
	order := make([]int, len(speeds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for k := 0; assigned < total; k++ {
		shares[order[k%len(order)]]++
		assigned++
	}
	return shares, nil
}

// Rect is one processor's rectangle inside a generalised block, in units of
// r×r matrix blocks.
type Rect struct {
	Row, Col      int // top-left corner within the l×l generalised block
	Height, Width int
}

// Block2D is the heterogeneous partitioning of an l×l generalised block
// over an m×m processor grid. Every generalised block of the matrix is
// partitioned identically.
type Block2D struct {
	M int // processor grid dimension
	L int // generalised block size, in r×r blocks

	// W[j] is the width of processor column j's vertical slice; sum = L.
	W []int
	// H[i][j] is the height of processor (i,j)'s rectangle inside column
	// j's slice; for each j the heights sum to L.
	H [][]int
	// ColStart[j] is the first block column of slice j.
	ColStart []int
	// RowStart[i][j] is the first block row of processor (i,j)'s
	// rectangle.
	RowStart [][]int
}

// Generalized2D computes the distribution of [6] for an m×m grid with the
// given per-processor speeds (speeds[i][j] is the speed of processor P_ij)
// and generalised block size l ≥ m:
//
//  1. the l columns are split into m vertical slices with widths
//     proportional to the column speed sums, then
//  2. each vertical slice is split independently into m rectangles with
//     heights proportional to the individual processor speeds in that grid
//     column.
//
// The area of each rectangle is then proportional to its processor's speed
// up to rounding, so each processor's share of every generalised block —
// and hence of the whole matrix — matches its speed.
func Generalized2D(speeds [][]float64, l int) (*Block2D, error) {
	m := len(speeds)
	if m == 0 {
		return nil, fmt.Errorf("partition: empty speed matrix")
	}
	for i := range speeds {
		if len(speeds[i]) != m {
			return nil, fmt.Errorf("partition: speed matrix row %d has %d entries, want %d", i, len(speeds[i]), m)
		}
	}
	if l < m {
		return nil, fmt.Errorf("partition: generalised block size %d smaller than grid %d", l, m)
	}
	colSpeeds := make([]float64, m)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			colSpeeds[j] += speeds[i][j]
		}
	}
	w, err := Proportional1D(l, colSpeeds)
	if err != nil {
		return nil, err
	}
	// Every processor column must receive at least one block column,
	// otherwise its processors would hold no data. Steal from the widest
	// columns.
	if err := ensurePositive(w, colSpeeds); err != nil {
		return nil, err
	}
	b := &Block2D{M: m, L: l, W: w}
	b.ColStart = prefix(w)
	b.H = make([][]int, m)
	b.RowStart = make([][]int, m)
	for i := 0; i < m; i++ {
		b.H[i] = make([]int, m)
		b.RowStart[i] = make([]int, m)
	}
	for j := 0; j < m; j++ {
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = speeds[i][j]
		}
		h, err := Proportional1D(l, col)
		if err != nil {
			return nil, err
		}
		if err := ensurePositive(h, col); err != nil {
			return nil, err
		}
		starts := prefix(h)
		for i := 0; i < m; i++ {
			b.H[i][j] = h[i]
			b.RowStart[i][j] = starts[i]
		}
	}
	return b, nil
}

// FromParts reconstructs a Block2D from its widths and heights (e.g. after
// they travelled over the network), validating that they tile an l×l
// block.
func FromParts(l int, w []int, h [][]int) (*Block2D, error) {
	m := len(w)
	if m == 0 || len(h) != m {
		return nil, fmt.Errorf("partition: FromParts needs square inputs, got w[%d] h[%d]", m, len(h))
	}
	sumW := 0
	for _, x := range w {
		if x <= 0 {
			return nil, fmt.Errorf("partition: non-positive width %d", x)
		}
		sumW += x
	}
	if sumW != l {
		return nil, fmt.Errorf("partition: widths sum to %d, want %d", sumW, l)
	}
	b := &Block2D{M: m, L: l, W: append([]int(nil), w...), ColStart: prefix(w)}
	b.H = make([][]int, m)
	b.RowStart = make([][]int, m)
	for i := 0; i < m; i++ {
		if len(h[i]) != m {
			return nil, fmt.Errorf("partition: ragged heights")
		}
		b.H[i] = append([]int(nil), h[i]...)
		b.RowStart[i] = make([]int, m)
	}
	for j := 0; j < m; j++ {
		sum := 0
		for i := 0; i < m; i++ {
			if h[i][j] <= 0 {
				return nil, fmt.Errorf("partition: non-positive height %d at (%d,%d)", h[i][j], i, j)
			}
			b.RowStart[i][j] = sum
			sum += h[i][j]
		}
		if sum != l {
			return nil, fmt.Errorf("partition: column %d heights sum to %d, want %d", j, sum, l)
		}
	}
	return b, nil
}

// Uniform2D returns the homogeneous 2-D block-cyclic distribution used by
// the paper's plain-MPI baseline (ScaLAPACK style): generalised block size
// equal to the grid size, every rectangle 1×1.
func Uniform2D(m int) *Block2D {
	speeds := make([][]float64, m)
	for i := range speeds {
		speeds[i] = make([]float64, m)
		for j := range speeds[i] {
			speeds[i][j] = 1
		}
	}
	b, err := Generalized2D(speeds, m)
	if err != nil {
		panic(err) // cannot happen: uniform speeds, l == m
	}
	return b
}

// ensurePositive raises zero shares to one by stealing from the largest
// shares (processors that received more than one). It fails only if there
// are more parties than items.
func ensurePositive(shares []int, speeds []float64) error {
	total := 0
	for _, s := range shares {
		total += s
	}
	if total < len(shares) {
		return fmt.Errorf("partition: %d items cannot give every one of %d parties a positive share", total, len(shares))
	}
	for i := range shares {
		for shares[i] == 0 {
			// Steal from the current maximum.
			maxIdx := 0
			for k, s := range shares {
				if s > shares[maxIdx] {
					maxIdx = k
				}
			}
			shares[maxIdx]--
			shares[i]++
		}
	}
	return nil
}

func prefix(xs []int) []int {
	out := make([]int, len(xs))
	acc := 0
	for i, x := range xs {
		out[i] = acc
		acc += x
	}
	return out
}

// Rect returns processor (i,j)'s rectangle within a generalised block.
func (b *Block2D) Rect(i, j int) Rect {
	return Rect{
		Row:    b.RowStart[i][j],
		Col:    b.ColStart[j],
		Height: b.H[i][j],
		Width:  b.W[j],
	}
}

// Area returns the number of r×r blocks processor (i,j) owns per
// generalised block.
func (b *Block2D) Area(i, j int) int { return b.H[i][j] * b.W[j] }

// OwnerOf returns the grid coordinates of the processor owning the block
// at position (row, col) within a generalised block (0 ≤ row, col < L).
// It is the GetProcessor function of the paper's performance model.
func (b *Block2D) OwnerOf(row, col int) (i, j int) {
	if row < 0 || row >= b.L || col < 0 || col >= b.L {
		panic(fmt.Sprintf("partition: position (%d,%d) outside generalised block of size %d", row, col, b.L))
	}
	j = sort.Search(b.M, func(k int) bool {
		return k == b.M-1 || b.ColStart[k+1] > col
	})
	for i = 0; i < b.M; i++ {
		if b.RowStart[i][j] <= row && row < b.RowStart[i][j]+b.H[i][j] {
			return i, j
		}
	}
	panic("partition: unreachable: rows cover the block")
}

// GlobalOwner returns the owner of global block (bi, bj) of a matrix
// partitioned block-cyclically with this distribution: position within the
// generalised block is (bi mod L, bj mod L).
func (b *Block2D) GlobalOwner(bi, bj int) (i, j int) {
	return b.OwnerOf(bi%b.L, bj%b.L)
}

// RowOverlap returns the number of block rows shared by the row intervals
// of rectangles R(i1,j1) and R(i2,j2): the h[I][J][K][L] parameter of the
// paper's ParallelAxB performance model. Processor (i1,j1) must send its
// part of a pivot column of A to (i2,j2) exactly when their rectangles
// overlap in rows and sit in different grid columns.
func (b *Block2D) RowOverlap(i1, j1, i2, j2 int) int {
	lo := max(b.RowStart[i1][j1], b.RowStart[i2][j2])
	hi := min(b.RowStart[i1][j1]+b.H[i1][j1], b.RowStart[i2][j2]+b.H[i2][j2])
	if hi < lo {
		return 0
	}
	return hi - lo
}

// HParam assembles the full h[m][m][m][m] parameter of the ParallelAxB
// performance model: HParam()[i][j][k][l] = RowOverlap(i,j,k,l).
func (b *Block2D) HParam() [][][][]int {
	h := make([][][][]int, b.M)
	for i := range h {
		h[i] = make([][][]int, b.M)
		for j := range h[i] {
			h[i][j] = make([][]int, b.M)
			for k := range h[i][j] {
				h[i][j][k] = make([]int, b.M)
				for l := range h[i][j][k] {
					h[i][j][k][l] = b.RowOverlap(i, j, k, l)
				}
			}
		}
	}
	return h
}
