package partition

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProportional1DExact(t *testing.T) {
	shares, err := Proportional1D(100, []float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] != 25 || shares[1] != 25 || shares[2] != 50 {
		t.Fatalf("shares = %v, want [25 25 50]", shares)
	}
}

func TestProportional1DRounding(t *testing.T) {
	shares, err := Proportional1D(10, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range shares {
		sum += s
		if s < 3 || s > 4 {
			t.Fatalf("share %d outside [3,4]: %v", s, shares)
		}
	}
	if sum != 10 {
		t.Fatalf("shares sum to %d", sum)
	}
}

func TestProportional1DErrors(t *testing.T) {
	if _, err := Proportional1D(-1, []float64{1}); err == nil {
		t.Error("negative total accepted")
	}
	if _, err := Proportional1D(5, nil); err == nil {
		t.Error("empty speeds accepted")
	}
	if _, err := Proportional1D(5, []float64{1, 0}); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := Proportional1D(5, []float64{1, -2}); err == nil {
		t.Error("negative speed accepted")
	}
}

// Property: shares sum to total and each share is within 1 of the exact
// proportional amount.
func TestProportional1DProperties(t *testing.T) {
	f := func(total uint16, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		speeds := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			speeds[i] = float64(r%250) + 1
			sum += speeds[i]
		}
		n := int(total % 5000)
		shares, err := Proportional1D(n, speeds)
		if err != nil {
			return false
		}
		got := 0
		for i, s := range shares {
			got += s
			exact := float64(n) * speeds[i] / sum
			if math.Abs(float64(s)-exact) >= 1 {
				return false
			}
		}
		return got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// paperSpeeds arranges the paper's nine machines on a 3x3 grid.
func paperSpeeds() [][]float64 {
	return [][]float64{
		{46, 46, 46},
		{46, 46, 46},
		{176, 106, 9},
	}
}

func TestGeneralized2DShape(t *testing.T) {
	b, err := Generalized2D(paperSpeeds(), 9)
	if err != nil {
		t.Fatal(err)
	}
	// Widths sum to L.
	sumW := 0
	for _, w := range b.W {
		sumW += w
		if w <= 0 {
			t.Fatalf("non-positive width in %v", b.W)
		}
	}
	if sumW != 9 {
		t.Fatalf("widths %v sum to %d, want 9", b.W, sumW)
	}
	// Heights per column sum to L.
	for j := 0; j < 3; j++ {
		sumH := 0
		for i := 0; i < 3; i++ {
			sumH += b.H[i][j]
			if b.H[i][j] <= 0 {
				t.Fatalf("non-positive height at (%d,%d)", i, j)
			}
		}
		if sumH != 9 {
			t.Fatalf("column %d heights sum to %d, want 9", j, sumH)
		}
	}
	// Total area is L^2.
	area := 0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			area += b.Area(i, j)
		}
	}
	if area != 81 {
		t.Fatalf("areas sum to %d, want 81", area)
	}
}

func TestGeneralized2DProportionality(t *testing.T) {
	// With a large generalised block, areas track speeds closely.
	speeds := paperSpeeds()
	b, err := Generalized2D(speeds, 120)
	if err != nil {
		t.Fatal(err)
	}
	var totalSpeed float64
	for i := range speeds {
		for j := range speeds[i] {
			totalSpeed += speeds[i][j]
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			got := float64(b.Area(i, j)) / float64(120*120)
			want := speeds[i][j] / totalSpeed
			if math.Abs(got-want) > 0.02 {
				t.Errorf("P(%d,%d) area share %.4f, speed share %.4f", i, j, got, want)
			}
		}
	}
}

func TestUniform2D(t *testing.T) {
	b := Uniform2D(3)
	if b.L != 3 {
		t.Fatalf("uniform L = %d, want 3", b.L)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b.Area(i, j) != 1 {
				t.Fatalf("uniform area (%d,%d) = %d", i, j, b.Area(i, j))
			}
		}
	}
	// Standard block-cyclic ownership.
	for bi := 0; bi < 6; bi++ {
		for bj := 0; bj < 6; bj++ {
			i, j := b.GlobalOwner(bi, bj)
			if i != bi%3 || j != bj%3 {
				t.Fatalf("GlobalOwner(%d,%d) = (%d,%d)", bi, bj, i, j)
			}
		}
	}
}

func TestOwnerOfCoversBlock(t *testing.T) {
	b, err := Generalized2D(paperSpeeds(), 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[[2]int]int)
	for r := 0; r < 11; r++ {
		for c := 0; c < 11; c++ {
			i, j := b.OwnerOf(r, c)
			counts[[2]int{i, j}]++
			// Consistency with the rectangle geometry.
			rect := b.Rect(i, j)
			if r < rect.Row || r >= rect.Row+rect.Height || c < rect.Col || c >= rect.Col+rect.Width {
				t.Fatalf("OwnerOf(%d,%d) = (%d,%d) but rect is %+v", r, c, i, j, rect)
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if counts[[2]int{i, j}] != b.Area(i, j) {
				t.Fatalf("cell count %d != area %d at (%d,%d)", counts[[2]int{i, j}], b.Area(i, j), i, j)
			}
		}
	}
}

func TestOwnerOfPanicsOutside(t *testing.T) {
	b := Uniform2D(2)
	defer func() {
		if recover() == nil {
			t.Fatal("OwnerOf outside block did not panic")
		}
	}()
	b.OwnerOf(2, 0)
}

func TestRowOverlap(t *testing.T) {
	b, err := Generalized2D(paperSpeeds(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			// Self overlap is own height.
			if got := b.RowOverlap(i, j, i, j); got != b.H[i][j] {
				t.Errorf("self overlap (%d,%d) = %d, want %d", i, j, got, b.H[i][j])
			}
			// Symmetry: h[I][J][K][L] == h[K][L][I][J] (paper's note).
			for k := 0; k < 3; k++ {
				for l := 0; l < 3; l++ {
					if b.RowOverlap(i, j, k, l) != b.RowOverlap(k, l, i, j) {
						t.Errorf("overlap not symmetric at (%d,%d,%d,%d)", i, j, k, l)
					}
				}
			}
		}
	}
	// Overlaps of one rectangle with a full different column sum to its
	// height (the column's rectangles tile all L rows).
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for l := 0; l < 3; l++ {
				if l == j {
					continue
				}
				sum := 0
				for k := 0; k < 3; k++ {
					sum += b.RowOverlap(i, j, k, l)
				}
				if sum != b.H[i][j] {
					t.Errorf("overlaps of (%d,%d) with column %d sum to %d, want %d", i, j, l, sum, b.H[i][j])
				}
			}
		}
	}
}

func TestHParamMatchesRowOverlap(t *testing.T) {
	b, err := Generalized2D(paperSpeeds(), 9)
	if err != nil {
		t.Fatal(err)
	}
	h := b.HParam()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				for l := 0; l < 3; l++ {
					if h[i][j][k][l] != b.RowOverlap(i, j, k, l) {
						t.Fatalf("HParam mismatch at (%d,%d,%d,%d)", i, j, k, l)
					}
				}
			}
		}
	}
}

func TestGeneralized2DErrors(t *testing.T) {
	if _, err := Generalized2D(nil, 4); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := Generalized2D([][]float64{{1, 2}}, 4); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Generalized2D(paperSpeeds(), 2); err == nil {
		t.Error("l < m accepted")
	}
}

// Property: Generalized2D always produces a tiling — every cell owned
// exactly once, widths/heights positive, areas sum to L².
func TestGeneralized2DTilingProperty(t *testing.T) {
	f := func(raw [9]uint8, lRaw uint8) bool {
		m := 3
		l := m + int(lRaw%20)
		speeds := make([][]float64, m)
		for i := 0; i < m; i++ {
			speeds[i] = make([]float64, m)
			for j := 0; j < m; j++ {
				speeds[i][j] = float64(raw[i*m+j]%100) + 1
			}
		}
		b, err := Generalized2D(speeds, l)
		if err != nil {
			return false
		}
		seen := 0
		for r := 0; r < l; r++ {
			for c := 0; c < l; c++ {
				i, j := b.OwnerOf(r, c)
				if i < 0 || i >= m || j < 0 || j >= m {
					return false
				}
				seen++
			}
		}
		return seen == l*l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromPartsRoundTrip(t *testing.T) {
	b, err := Generalized2D(paperSpeeds(), 9)
	if err != nil {
		t.Fatal(err)
	}
	h := make([][]int, 3)
	for i := range h {
		h[i] = make([]int, 3)
		for j := range h[i] {
			h[i][j] = b.H[i][j]
		}
	}
	got, err := FromParts(9, b.W, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got.Rect(i, j) != b.Rect(i, j) {
				t.Fatalf("rect (%d,%d) differs: %+v vs %+v", i, j, got.Rect(i, j), b.Rect(i, j))
			}
		}
	}
}

func TestFromPartsValidation(t *testing.T) {
	ones := [][]int{{1, 1}, {1, 1}}
	for name, tc := range map[string]struct {
		l int
		w []int
		h [][]int
	}{
		"empty":          {2, nil, nil},
		"non-square":     {2, []int{1, 1}, [][]int{{1, 1}}},
		"zero width":     {2, []int{0, 2}, ones},
		"width sum":      {3, []int{1, 1}, ones},
		"ragged heights": {2, []int{1, 1}, [][]int{{1, 1}, {1}}},
		"zero height":    {2, []int{1, 1}, [][]int{{0, 1}, {2, 1}}},
		"height col sum": {2, []int{1, 1}, [][]int{{1, 1}, {2, 1}}},
	} {
		if _, err := FromParts(tc.l, tc.w, tc.h); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// A valid 2x2 uniform case passes.
	if _, err := FromParts(2, []int{1, 1}, ones); err != nil {
		t.Error(err)
	}
}

func TestEnsurePositiveTooFewItems(t *testing.T) {
	// 2 items for 3 parties: impossible.
	_, err := Generalized2D([][]float64{
		{1, 1, 1},
		{1, 1, 1},
		{1, 1, 1},
	}, 2)
	if err == nil {
		t.Fatal("l < m accepted through Generalized2D")
	}
}

func TestGlobalOwnerCyclic(t *testing.T) {
	b, err := Generalized2D(paperSpeeds(), 9)
	if err != nil {
		t.Fatal(err)
	}
	// Block (bi, bj) and (bi+9, bj+18) have the same owner (period L).
	for bi := 0; bi < 9; bi++ {
		for bj := 0; bj < 9; bj++ {
			i1, j1 := b.GlobalOwner(bi, bj)
			i2, j2 := b.GlobalOwner(bi+9, bj+18)
			if i1 != i2 || j1 != j2 {
				t.Fatalf("cyclic ownership broken at (%d,%d)", bi, bj)
			}
		}
	}
}
