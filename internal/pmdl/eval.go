package pmdl

// Expression evaluation and lvalue resolution.

// interp carries the static context of an evaluation: struct definitions
// and host functions.
type interp struct {
	structs map[string]*StructDef
	hosts   map[string]HostFunc
	// floatDiv makes / produce real quotients even between ints. It is
	// enabled while evaluating the percentage expression of a %% action:
	// the published models write percentages like (100/n), which under C
	// integer semantics would collapse to 0 for n > 100 — the mpC
	// runtime the paper builds on evaluates them as doubles.
	floatDiv bool
}

// lvalue resolves an expression to an assignable cell.
func (it *interp) lvalue(e Expr, env *env) (*Cell, error) {
	switch x := e.(type) {
	case *Ident:
		c, ok := env.lookup(x.Name)
		if !ok {
			return nil, errf(x.Pos, "undefined name %q", x.Name)
		}
		return c, nil
	case *MemberExpr:
		base, err := it.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		s, ok := base.(*StructVal)
		if !ok {
			return nil, errf(x.Pos, "member access on non-struct value")
		}
		c, ok := s.Fields[x.Name]
		if !ok {
			return nil, errf(x.Pos, "struct %s has no field %q", s.Type, x.Name)
		}
		return c, nil
	case *IndexExpr:
		base, err := it.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		arr, ok := base.(*ArrayVal)
		if !ok {
			return nil, errf(x.Pos, "indexing a non-array value")
		}
		iv, err := it.eval(x.Idx, env)
		if err != nil {
			return nil, err
		}
		i, err := asInt(x.Pos, iv)
		if err != nil {
			return nil, err
		}
		sub, cell, err := arr.index(x.Pos, i)
		if err != nil {
			return nil, err
		}
		if cell != nil {
			return cell, nil
		}
		// A sub-array is not an assignable scalar; wrap it so reads
		// work but writes fail cleanly.
		return &Cell{V: sub}, nil
	default:
		return nil, errf(exprPos(e), "expression is not assignable")
	}
}

// eval evaluates an expression to a value.
func (it *interp) eval(e Expr, env *env) (Value, error) {
	switch x := e.(type) {
	case *IntLit:
		return IntVal(x.Value), nil
	case *FloatLit:
		return DoubleVal(x.Value), nil
	case *SizeofExpr:
		if x.Type.Kind == TypeDouble {
			return IntVal(8), nil
		}
		return IntVal(4), nil
	case *Ident:
		c, ok := env.lookup(x.Name)
		if !ok {
			return nil, errf(x.Pos, "undefined name %q", x.Name)
		}
		return c.V, nil
	case *MemberExpr, *IndexExpr:
		c, err := it.lvalue(e, env)
		if err != nil {
			return nil, err
		}
		return c.V, nil
	case *UnaryExpr:
		switch x.Op {
		case TokAmp:
			c, err := it.lvalue(x.X, env)
			if err != nil {
				return nil, err
			}
			return RefVal{Cell: c}, nil
		case TokMinus:
			v, err := it.eval(x.X, env)
			if err != nil {
				return nil, err
			}
			switch n := v.(type) {
			case IntVal:
				return IntVal(-n), nil
			case DoubleVal:
				return DoubleVal(-n), nil
			}
			return nil, errf(x.Pos, "unary - on non-numeric value")
		case TokNot:
			v, err := it.eval(x.X, env)
			if err != nil {
				return nil, err
			}
			b, err := isTruthy(x.Pos, v)
			if err != nil {
				return nil, err
			}
			return boolVal(!b), nil
		}
		return nil, errf(x.Pos, "invalid unary operator %s", x.Op)
	case *BinaryExpr:
		if x.Op == TokAndAnd || x.Op == TokOrOr {
			l, err := it.eval(x.X, env)
			if err != nil {
				return nil, err
			}
			lb, err := isTruthy(x.Pos, l)
			if err != nil {
				return nil, err
			}
			if x.Op == TokAndAnd && !lb {
				return IntVal(0), nil
			}
			if x.Op == TokOrOr && lb {
				return IntVal(1), nil
			}
			r, err := it.eval(x.Y, env)
			if err != nil {
				return nil, err
			}
			rb, err := isTruthy(x.Pos, r)
			if err != nil {
				return nil, err
			}
			return boolVal(rb), nil
		}
		l, err := it.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		r, err := it.eval(x.Y, env)
		if err != nil {
			return nil, err
		}
		if it.floatDiv && x.Op == TokSlash {
			lf, err := asDouble(x.Pos, l)
			if err != nil {
				return nil, err
			}
			rf, err := asDouble(x.Pos, r)
			if err != nil {
				return nil, err
			}
			if rf == 0 {
				return nil, errf(x.Pos, "division by zero")
			}
			return DoubleVal(lf / rf), nil
		}
		return numericBinop(x.Pos, x.Op, l, r)
	case *AssignExpr:
		c, err := it.lvalue(x.LHS, env)
		if err != nil {
			return nil, err
		}
		rhs, err := it.eval(x.RHS, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case TokAssign:
			return it.assign(x.Pos, c, rhs)
		case TokPlusEq, TokMinusEq:
			op := TokPlus
			if x.Op == TokMinusEq {
				op = TokMinus
			}
			nv, err := numericBinop(x.Pos, op, c.V, rhs)
			if err != nil {
				return nil, err
			}
			c.V = nv
			return nv, nil
		}
		return nil, errf(x.Pos, "invalid assignment operator %s", x.Op)
	case *IncDecExpr:
		c, err := it.lvalue(x.X, env)
		if err != nil {
			return nil, err
		}
		op := TokPlus
		if x.Op == TokDec {
			op = TokMinus
		}
		nv, err := numericBinop(x.Pos, op, c.V, IntVal(1))
		if err != nil {
			return nil, err
		}
		old := c.V
		c.V = nv
		return old, nil // postfix semantics
	case *CallExpr:
		fn, ok := it.hosts[x.Name]
		if !ok {
			return nil, errf(x.Pos, "call to unknown function %q (register it as a host function)", x.Name)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := it.eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return fn(x.Pos, args)
	}
	return nil, errf(exprPos(e), "cannot evaluate expression")
}

// assign writes a value into a cell, copying struct contents field by
// field so struct values keep value semantics.
func (it *interp) assign(pos Pos, c *Cell, v Value) (Value, error) {
	if dst, ok := c.V.(*StructVal); ok {
		src, ok := v.(*StructVal)
		if !ok {
			return nil, errf(pos, "assigning non-struct to struct variable")
		}
		if src.Type != dst.Type {
			return nil, errf(pos, "assigning %s to %s", src.Type, dst.Type)
		}
		for name, cell := range src.Fields {
			dst.Fields[name].V = cell.V
		}
		return dst, nil
	}
	switch v.(type) {
	case IntVal, DoubleVal:
		c.V = v
		return v, nil
	case *StructVal:
		// Declared-but-unset cell (zero int) receiving a struct: allow
		// only if the cell was created for that struct type, which the
		// declaration path handles; reaching here is a type error.
		return nil, errf(pos, "assigning struct to non-struct variable")
	default:
		return nil, errf(pos, "cannot assign %s value", v.valueKind())
	}
}

func exprPos(e Expr) Pos {
	switch x := e.(type) {
	case *IntLit:
		return x.Pos
	case *FloatLit:
		return x.Pos
	case *Ident:
		return x.Pos
	case *MemberExpr:
		return x.Pos
	case *IndexExpr:
		return x.Pos
	case *CallExpr:
		return x.Pos
	case *UnaryExpr:
		return x.Pos
	case *BinaryExpr:
		return x.Pos
	case *AssignExpr:
		return x.Pos
	case *IncDecExpr:
		return x.Pos
	case *SizeofExpr:
		return x.Pos
	}
	return Pos{}
}
