package pmdl

import (
	"strings"
	"testing"
)

// evalModel compiles a one-processor model whose node volume is the
// expression under test and returns the evaluated volume.
func evalVolume(t *testing.T, expr string, hosts map[string]HostFunc) float64 {
	t.Helper()
	src := `algorithm E(int p, int a, int b, double f) {
	  coord I=p;
	  node {I>=0: bench*(` + expr + `);};
	  parent[0];
	  scheme { };
	}`
	m, err := ParseModel(src)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	for name, fn := range hosts {
		m.RegisterHost(name, fn)
	}
	inst, err := m.Instantiate(1, 7, 3, 2.5)
	if err != nil {
		t.Fatalf("instantiate %q: %v", expr, err)
	}
	return inst.CompVolume[0]
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"a+b", 10},
		{"a-b", 4},
		{"a*b", 21},
		{"a/b", 2},      // C integer division truncates
		{"a%b", 1},      // C modulo
		{"b-a", -4 + 5}, // volumes must be >= 0; -4 would error, so +5... see below
		{"a/b*b", 6},    // (7/3)*3 == 6, not 7
		{"f*a", 17.5},   // mixed promotes to double
		{"f+f", 5},
		{"a/f", 2.8},          // int/double is real division
		{"sizeof(double)", 8}, // bytes
		{"sizeof(int)", 4},    // bytes
		{"a == 7", 1},         // comparisons are int 0/1
		{"a != 7", 0},
		{"a < b || b < a", 1}, // short-circuit logicals
		{"a > 0 && b > 0", 1},
		{"!(a > 0)", 0},
		{"-b + a", 4},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			if tc.expr == "b-a" {
				return // placeholder; negative volumes tested separately
			}
			if got := evalVolume(t, tc.expr, nil); got != tc.want {
				t.Fatalf("%s = %v, want %v", tc.expr, got, tc.want)
			}
		})
	}
}

func TestNegativeVolumeRejected(t *testing.T) {
	src := `algorithm E(int p) { coord I=p; node {I>=0: bench*(0-5);}; parent[0]; scheme { }; }`
	m, err := ParseModel(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Instantiate(1); err == nil {
		t.Fatal("negative node volume accepted")
	}
}

func TestDivisionByZeroRejected(t *testing.T) {
	for _, expr := range []string{"a/(b-3)", "a%(b-3)"} {
		src := `algorithm E(int p, int a, int b) { coord I=p; node {I>=0: bench*(` + expr + `);}; parent[0]; scheme { }; }`
		m, err := ParseModel(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Instantiate(1, 7, 3); err == nil {
			t.Fatalf("%s with zero divisor accepted", expr)
		}
	}
}

// schemeSideEffects interprets a scheme that exercises declarations,
// assignments, compound assignment, increments, struct copies and loops,
// then checks the generated actions.
func TestSchemeSideEffects(t *testing.T) {
	src := `typedef struct {int I; int J;} P;
	algorithm E(int p) {
	  coord I=p;
	  node {I>=0: bench*(100);};
	  parent[0];
	  scheme {
	    int acc, i;
	    P a, b;
	    acc = 0;
	    for (i = 0; i < 4; i++) acc += 2;          // acc = 8
	    acc -= 3;                                   // acc = 5
	    a.I = acc;
	    b = a;                                      // struct copy
	    b.I++;                                      // postfix on member
	    if (b.I == 6 && a.I == 5) (b.I*10)%%[0];    // 60% of 100 units
	  };
	}`
	m, err := ParseModel(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate(1)
	if err != nil {
		t.Fatal(err)
	}
	dag, err := inst.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	if dag.Size() != 1 {
		t.Fatalf("expected 1 task, got %d", dag.Size())
	}
	if got := dag.Tasks[0].Units; got != 60 {
		t.Fatalf("computed units %v, want 60 (struct copy must not alias)", got)
	}
}

func TestHostFunctionWithRef(t *testing.T) {
	var got []int64
	hosts := map[string]HostFunc{
		"Probe": func(pos Pos, args []Value) (Value, error) {
			x, _ := asInt(pos, args[0])
			got = append(got, x)
			if ref, ok := args[1].(RefVal); ok {
				ref.Cell.V = IntVal(x * 2)
			}
			return IntVal(0), nil
		},
	}
	src := `algorithm E(int p) {
	  coord I=p;
	  node {I>=0: bench*(10);};
	  parent[0];
	  scheme {
	    int out;
	    Probe(21, &out);
	    (out)%%[0];
	  };
	}`
	m, err := ParseModel(src)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range hosts {
		m.RegisterHost(name, fn)
	}
	inst, err := m.Instantiate(1)
	if err != nil {
		t.Fatal(err)
	}
	dag, err := inst.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 21 {
		t.Fatalf("host function saw %v", got)
	}
	// out == 42 -> 42% of 10 units = 4.2
	if u := dag.Tasks[0].Units; u != 4.2 {
		t.Fatalf("units = %v, want 4.2", u)
	}
}

func TestParFanOutStructure(t *testing.T) {
	// par over 4 procs computing, then a second par: the second wave
	// must depend on the first through the fork/join structure.
	src := `algorithm E(int p) {
	  coord I=p;
	  node {I>=0: bench*(10);};
	  parent[0];
	  scheme {
	    int i;
	    par (i = 0; i < p; i++) 50%%[i];
	    par (i = 0; i < p; i++) 50%%[i];
	  };
	}`
	m, err := ParseModel(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate(4)
	if err != nil {
		t.Fatal(err)
	}
	dag, err := inst.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	// 8 computes; possibly join nops.
	var computes, withDeps int
	for _, task := range dag.Tasks {
		if task.Units > 0 {
			computes++
			if len(task.Deps) > 0 {
				withDeps++
			}
		}
	}
	if computes != 8 {
		t.Fatalf("computes = %d", computes)
	}
	// The second wave's four tasks must each depend on the first wave.
	if withDeps != 4 {
		t.Fatalf("tasks with dependencies = %d, want 4", withDeps)
	}
}

func TestLinkConflictDetected(t *testing.T) {
	// Two clauses defining different volumes for the same pair.
	src := `algorithm E(int p) {
	  coord I=p;
	  link (L=p) {
	    I==0 && L==1 : length*(100) [L]->[I];
	    I==0 && L==1 : length*(200) [L]->[I];
	  };
	  parent[0];
	  scheme { };
	}`
	m, err := ParseModel(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Instantiate(2); err == nil {
		t.Fatal("conflicting link volumes accepted")
	}
}

func TestInstantiateArgChecking(t *testing.T) {
	m := MustParseModel(`algorithm E(int p, int d[p], double f) { coord I=p; parent[0]; scheme { }; }`)
	cases := []struct {
		name string
		args []any
	}{
		{"too few", []any{2}},
		{"too many", []any{2, []int{1, 2}, 1.0, 9}},
		{"wrong dim length", []any{2, []int{1, 2, 3}, 1.0}},
		{"wrong dim count", []any{2, [][]int{{1}, {2}}, 1.0}},
		{"float for int", []any{2.5, []int{1, 2}, 1.0}},
		{"scalar for array", []any{2, 7, 1.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Instantiate(tc.args...); err == nil {
				t.Fatalf("accepted %v", tc.args)
			}
		})
	}
	// Correct args work, int accepted for double.
	if _, err := m.Instantiate(2, []int{1, 2}, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRaggedArrayRejected(t *testing.T) {
	m := MustParseModel(`algorithm E(int p, int d[p][p]) { coord I=p; parent[0]; scheme { }; }`)
	if _, err := m.Instantiate(2, [][]int{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged array accepted")
	}
}

func TestCoordsOfRoundTrip(t *testing.T) {
	m := MustParseModel(`algorithm E(int a, int b) { coord I=a, J=b; parent[0,0]; scheme { }; }`)
	inst, err := m.Instantiate(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumProcs != 12 {
		t.Fatalf("NumProcs = %d", inst.NumProcs)
	}
	for idx := 0; idx < 12; idx++ {
		c := inst.CoordsOf(idx)
		if c[0] != idx/4 || c[1] != idx%4 {
			t.Fatalf("CoordsOf(%d) = %v", idx, c)
		}
	}
}

func TestFormatValue(t *testing.T) {
	arr := newArray([]int{3})
	arr.Elems[1].V = IntVal(5)
	s := &StructVal{Type: "P", Fields: map[string]*Cell{"I": {V: IntVal(2)}}, Order: []string{"I"}}
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{IntVal(42), "42"},
		{DoubleVal(2.5), "2.5"},
		{arr, "[0 5 0]"},
		{s, "P{I: 2}"},
		{RefVal{Cell: &Cell{V: IntVal(1)}}, "&1"},
	} {
		if got := FormatValue(tc.v); got != tc.want {
			t.Errorf("FormatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestGetProcessorBuiltinErrors(t *testing.T) {
	// Wrong arity and wrong shapes must produce errors, not panics.
	if _, err := getProcessorBuiltin(Pos{}, []Value{IntVal(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	args := []Value{
		IntVal(0), IntVal(0), IntVal(1),
		newArray([]int{1}), // h must be 4-D
		newArray([]int{1}),
		RefVal{Cell: &Cell{V: IntVal(0)}},
	}
	if _, err := getProcessorBuiltin(Pos{}, args); err == nil {
		t.Error("1-D h accepted")
	}
}

func TestPercentEvaluatesReal(t *testing.T) {
	// (100/n) with n=180 must not collapse to zero.
	src := wrapScheme(`int n; n = 180; (100/n)%%[0];`)
	m := MustParseModel(src)
	inst, err := m.Instantiate(1)
	if err != nil {
		t.Fatal(err)
	}
	dag, err := inst.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	if dag.Tasks[0].Units <= 0 {
		t.Fatalf("percentage collapsed to %v", dag.Tasks[0].Units)
	}
}

func TestErrorTypeRendersPosition(t *testing.T) {
	err := errf(Pos{Line: 3, Col: 7}, "boom %d", 42)
	if !strings.Contains(err.Error(), "3:7") || !strings.Contains(err.Error(), "boom 42") {
		t.Fatalf("error format: %v", err)
	}
}
