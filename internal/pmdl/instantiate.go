package pmdl

import (
	"fmt"

	"repro/internal/sched"
)

// Model is a compiled performance model: the parsed source plus the host
// functions its scheme may call. It corresponds to the set of functions the
// paper's compiler generates from a model description (the HMPI_Model
// handle).
type Model struct {
	File   *File
	Source string
	hosts  map[string]HostFunc
}

// ParseModel compiles model source text. The builtin host function
// GetProcessor (used by the paper's matrix-multiplication model to locate
// the owner of a pivot block) is pre-registered.
func ParseModel(src string) (*Model, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	m := &Model{File: f, Source: src, hosts: make(map[string]HostFunc)}
	m.RegisterHost("GetProcessor", getProcessorBuiltin)
	return m, nil
}

// MustParseModel is ParseModel for known-good embedded sources.
func MustParseModel(src string) *Model {
	m, err := ParseModel(src)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the algorithm name.
func (m *Model) Name() string { return m.File.Algorithm.Name }

// RegisterHost makes fn callable from the scheme under the given name.
func (m *Model) RegisterHost(name string, fn HostFunc) { m.hosts[name] = fn }

// Instance is a performance model bound to actual parameters: the total
// number of abstract processors, the computation volume of each, the
// communication volume between each pair, and the parent — everything
// HMPI_Group_create and HMPI_Timeof consume.
type Instance struct {
	Model *Model
	// Dims are the coordinate ranges; NumProcs is their product.
	Dims     []int
	NumProcs int
	// CompVolume[p] is the computation volume of abstract processor p in
	// benchmark units (node declaration).
	CompVolume []float64
	// CommVolume[src][dst] is the total volume in bytes transferred from
	// src to dst during one execution of the algorithm (link
	// declaration).
	CommVolume [][]float64
	// Parent is the abstract index of the parent processor.
	Parent int

	paramEnv *env
	it       *interp
}

// Instantiate binds actual parameters (in declaration order) and evaluates
// the node, link and parent sections. Accepted Go argument types: int,
// float64, []int, [][]int, [][][]int, [][][][]int and []float64; array
// extents must match the declared dimension expressions.
func (m *Model) Instantiate(args ...any) (*Instance, error) {
	alg := m.File.Algorithm
	if len(args) != len(alg.Params) {
		return nil, fmt.Errorf("pmdl: model %s takes %d parameters, got %d", alg.Name, len(alg.Params), len(args))
	}
	structs := make(map[string]*StructDef, len(m.File.Typedefs))
	for _, td := range m.File.Typedefs {
		structs[td.Name] = td
	}
	it := &interp{structs: structs, hosts: m.hosts}
	paramEnv := newEnv(nil)

	for i, prm := range alg.Params {
		v, err := bindArg(it, paramEnv, prm, args[i])
		if err != nil {
			return nil, err
		}
		if _, err := paramEnv.define(prm.Pos, prm.Name, v); err != nil {
			return nil, err
		}
	}

	inst := &Instance{Model: m, paramEnv: paramEnv, it: it}

	// Coordinate space.
	for _, cv := range alg.Coords {
		sv, err := it.eval(cv.Size, paramEnv)
		if err != nil {
			return nil, err
		}
		n, err := asInt(cv.Pos, sv)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, errf(cv.Pos, "coordinate %s has non-positive range %d", cv.Name, n)
		}
		inst.Dims = append(inst.Dims, int(n))
	}
	inst.NumProcs = 1
	for _, d := range inst.Dims {
		inst.NumProcs *= d
	}

	inst.CompVolume = make([]float64, inst.NumProcs)
	inst.CommVolume = make([][]float64, inst.NumProcs)
	for i := range inst.CommVolume {
		inst.CommVolume[i] = make([]float64, inst.NumProcs)
	}

	if err := inst.evalNode(); err != nil {
		return nil, err
	}
	if err := inst.evalLink(); err != nil {
		return nil, err
	}
	if err := inst.evalParent(); err != nil {
		return nil, err
	}
	return inst, nil
}

// bindArg converts one Go argument to a model value, checking the declared
// dimensions.
func bindArg(it *interp, env *env, prm Param, arg any) (Value, error) {
	wantDims := make([]int, len(prm.Dims))
	for i, de := range prm.Dims {
		v, err := it.eval(de, env)
		if err != nil {
			return nil, err
		}
		n, err := asInt(prm.Pos, v)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, errf(prm.Pos, "parameter %s: dimension %d evaluates to %d", prm.Name, i, n)
		}
		wantDims[i] = int(n)
	}
	if len(wantDims) == 0 {
		switch x := arg.(type) {
		case int:
			if prm.Type.Kind == TypeDouble {
				return DoubleVal(x), nil
			}
			return IntVal(x), nil
		case int64:
			if prm.Type.Kind == TypeDouble {
				return DoubleVal(x), nil
			}
			return IntVal(x), nil
		case float64:
			if prm.Type.Kind == TypeInt {
				return nil, fmt.Errorf("pmdl: parameter %s is int, got float64", prm.Name)
			}
			return DoubleVal(x), nil
		default:
			return nil, fmt.Errorf("pmdl: parameter %s: unsupported scalar type %T", prm.Name, arg)
		}
	}
	flat, gotDims, isFloat, err := flatten(arg)
	if err != nil {
		return nil, fmt.Errorf("pmdl: parameter %s: %w", prm.Name, err)
	}
	if len(gotDims) != len(wantDims) {
		return nil, fmt.Errorf("pmdl: parameter %s: got %d dimensions, want %d", prm.Name, len(gotDims), len(wantDims))
	}
	for i := range wantDims {
		if gotDims[i] != wantDims[i] {
			return nil, fmt.Errorf("pmdl: parameter %s: dimension %d is %d, want %d", prm.Name, i, gotDims[i], wantDims[i])
		}
	}
	a := newArray(wantDims)
	for i, f := range flat {
		if isFloat || prm.Type.Kind == TypeDouble {
			a.Elems[i].V = DoubleVal(f)
		} else {
			a.Elems[i].V = IntVal(int64(f))
		}
	}
	return a, nil
}

// flatten turns nested int/float64 slices into a flat float64 slice plus
// dimensions, verifying rectangularity.
func flatten(arg any) ([]float64, []int, bool, error) {
	switch x := arg.(type) {
	case []int:
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = float64(v)
		}
		return out, []int{len(x)}, false, nil
	case []float64:
		return append([]float64(nil), x...), []int{len(x)}, true, nil
	case [][]int:
		return flattenNested(len(x), func(i int) any { return x[i] })
	case [][][]int:
		return flattenNested(len(x), func(i int) any { return x[i] })
	case [][][][]int:
		return flattenNested(len(x), func(i int) any { return x[i] })
	default:
		return nil, nil, false, fmt.Errorf("unsupported array type %T", arg)
	}
}

func flattenNested(n int, at func(int) any) ([]float64, []int, bool, error) {
	if n == 0 {
		return nil, nil, false, fmt.Errorf("empty array")
	}
	var flat []float64
	var innerDims []int
	isFloat := false
	for i := 0; i < n; i++ {
		f, dims, fl, err := flatten(at(i))
		if err != nil {
			return nil, nil, false, err
		}
		if i == 0 {
			innerDims = dims
			isFloat = fl
		} else if !equalDims(dims, innerDims) {
			return nil, nil, false, fmt.Errorf("ragged array at index %d", i)
		}
		flat = append(flat, f...)
	}
	return flat, append([]int{n}, innerDims...), isFloat, nil
}

func equalDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// coordEnv returns an environment binding the coordinate variables to the
// tuple with flat index idx (row-major: first coordinate slowest).
func (inst *Instance) coordEnv(idx int) *env {
	e := newEnv(inst.paramEnv)
	rem := idx
	stride := inst.NumProcs
	for k, cv := range inst.Model.File.Algorithm.Coords {
		stride /= inst.Dims[k]
		c := rem / stride
		rem %= stride
		e.vars[cv.Name] = &Cell{V: IntVal(int64(c))}
	}
	return e
}

// flatIndex converts a coordinate tuple to the abstract processor index.
func (inst *Instance) flatIndex(pos Pos, coords []int64) (int, error) {
	if len(coords) != len(inst.Dims) {
		return 0, errf(pos, "expected %d coordinates, got %d", len(inst.Dims), len(coords))
	}
	idx := 0
	for k, c := range coords {
		if c < 0 || int(c) >= inst.Dims[k] {
			return 0, errf(pos, "coordinate %d out of range [0,%d)", c, inst.Dims[k])
		}
		idx = idx*inst.Dims[k] + int(c)
	}
	return idx, nil
}

// CoordsOf returns the coordinate tuple of an abstract processor index.
func (inst *Instance) CoordsOf(idx int) []int {
	out := make([]int, len(inst.Dims))
	rem := idx
	stride := inst.NumProcs
	for k := range inst.Dims {
		stride /= inst.Dims[k]
		out[k] = rem / stride
		rem %= stride
	}
	return out
}

// evalNode fills CompVolume: for each abstract processor the first node
// clause whose guard holds defines its volume.
func (inst *Instance) evalNode() error {
	for p := 0; p < inst.NumProcs; p++ {
		e := inst.coordEnv(p)
		for _, cl := range inst.Model.File.Algorithm.Nodes {
			ok, err := inst.guardHolds(cl.Guard, e)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			v, err := inst.it.eval(cl.Volume, e)
			if err != nil {
				return err
			}
			vol, err := asDouble(cl.Pos, v)
			if err != nil {
				return err
			}
			if vol < 0 {
				return errf(cl.Pos, "negative computation volume %g for processor %d", vol, p)
			}
			inst.CompVolume[p] = vol
			break
		}
	}
	return nil
}

// evalLink fills CommVolume. Each clause instance defines the volume for
// one ordered pair; conflicting definitions for the same pair are an
// error in the model.
func (inst *Instance) evalLink() error {
	alg := inst.Model.File.Algorithm
	if alg.Link == nil {
		return nil
	}
	// Dimensions of the link iteration variables.
	varDims := make([]int, len(alg.Link.Vars))
	for i, lv := range alg.Link.Vars {
		v, err := inst.it.eval(lv.Size, inst.paramEnv)
		if err != nil {
			return err
		}
		n, err := asInt(lv.Pos, v)
		if err != nil {
			return err
		}
		if n <= 0 {
			return errf(lv.Pos, "link variable %s has non-positive range %d", lv.Name, n)
		}
		varDims[i] = int(n)
	}
	total := 1
	for _, d := range varDims {
		total *= d
	}
	defined := make([][]bool, inst.NumProcs)
	for i := range defined {
		defined[i] = make([]bool, inst.NumProcs)
	}
	for p := 0; p < inst.NumProcs; p++ {
		base := inst.coordEnv(p)
		for vi := 0; vi < total; vi++ {
			e := newEnv(base)
			rem := vi
			stride := total
			for k, lv := range alg.Link.Vars {
				stride /= varDims[k]
				e.vars[lv.Name] = &Cell{V: IntVal(int64(rem / stride))}
				rem %= stride
			}
			for _, cl := range alg.Link.Clauses {
				ok, err := inst.guardHolds(cl.Guard, e)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				vol, err := inst.evalVolume(cl.Pos, cl.Volume, e)
				if err != nil {
					return err
				}
				src, err := inst.evalCoords(cl.Pos, cl.Src, e)
				if err != nil {
					return err
				}
				dst, err := inst.evalCoords(cl.Pos, cl.Dst, e)
				if err != nil {
					return err
				}
				if src == dst {
					continue // self transfers carry no cost
				}
				if defined[src][dst] && inst.CommVolume[src][dst] != vol {
					return errf(cl.Pos, "conflicting link volumes for pair %d->%d: %g and %g",
						src, dst, inst.CommVolume[src][dst], vol)
				}
				inst.CommVolume[src][dst] = vol
				defined[src][dst] = true
			}
		}
	}
	return nil
}

func (inst *Instance) evalParent() error {
	alg := inst.Model.File.Algorithm
	if alg.Parent == nil {
		inst.Parent = 0
		return nil
	}
	idx, err := inst.evalCoords(alg.Pos, alg.Parent, inst.paramEnv)
	if err != nil {
		return err
	}
	inst.Parent = idx
	return nil
}

func (inst *Instance) guardHolds(guard Expr, e *env) (bool, error) {
	v, err := inst.it.eval(guard, e)
	if err != nil {
		return false, err
	}
	return isTruthy(exprPos(guard), v)
}

func (inst *Instance) evalVolume(pos Pos, expr Expr, e *env) (float64, error) {
	v, err := inst.it.eval(expr, e)
	if err != nil {
		return 0, err
	}
	vol, err := asDouble(pos, v)
	if err != nil {
		return 0, err
	}
	if vol < 0 {
		return 0, errf(pos, "negative communication volume %g", vol)
	}
	return vol, nil
}

func (inst *Instance) evalCoords(pos Pos, exprs []Expr, e *env) (int, error) {
	coords := make([]int64, len(exprs))
	for i, ex := range exprs {
		v, err := inst.it.eval(ex, e)
		if err != nil {
			return 0, err
		}
		c, err := asInt(pos, v)
		if err != nil {
			return 0, err
		}
		coords[i] = c
	}
	return inst.flatIndex(pos, coords)
}

// TotalCompVolume returns the sum of all per-processor computation
// volumes.
func (inst *Instance) TotalCompVolume() float64 {
	var sum float64
	for _, v := range inst.CompVolume {
		sum += v
	}
	return sum
}

// TotalCommVolume returns the sum of all pairwise communication volumes in
// bytes.
func (inst *Instance) TotalCommVolume() float64 {
	var sum float64
	for _, row := range inst.CommVolume {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// getProcessorBuiltin implements the paper's GetProcessor helper:
// GetProcessor(row, col, m, h, w, &out) writes into out (a struct with
// fields I and J) the grid coordinates of the processor whose rectangle
// within a generalised block contains position (row, col). h is the
// four-dimensional height parameter (h[i][j][i][j] is the height of
// P_ij's rectangle) and w the width vector of the distribution.
func getProcessorBuiltin(pos Pos, args []Value) (Value, error) {
	if len(args) != 6 {
		return nil, errf(pos, "GetProcessor takes 6 arguments, got %d", len(args))
	}
	row, err := asInt(pos, args[0])
	if err != nil {
		return nil, err
	}
	col, err := asInt(pos, args[1])
	if err != nil {
		return nil, err
	}
	m, err := asInt(pos, args[2])
	if err != nil {
		return nil, err
	}
	h, ok := args[3].(*ArrayVal)
	if !ok || len(h.Dims) != 4 {
		return nil, errf(pos, "GetProcessor: h must be a 4-dimensional array")
	}
	w, ok := args[4].(*ArrayVal)
	if !ok || len(w.Dims) != 1 {
		return nil, errf(pos, "GetProcessor: w must be a 1-dimensional array")
	}
	ref, ok := args[5].(RefVal)
	if !ok {
		return nil, errf(pos, "GetProcessor: last argument must be &struct")
	}
	out, ok := ref.Cell.V.(*StructVal)
	if !ok {
		return nil, errf(pos, "GetProcessor: output must be a struct with fields I and J")
	}
	hAt := func(i, j, k, l int64) (int64, error) {
		mm := int64(m)
		idx := ((i*mm+j)*mm+k)*mm + l
		if idx < 0 || int(idx) >= len(h.Elems) {
			return 0, errf(pos, "GetProcessor: h index out of range")
		}
		return asInt(pos, h.Elems[idx].V)
	}
	// Locate the column slice containing col.
	var J int64 = -1
	acc := int64(0)
	for j := int64(0); j < m; j++ {
		wj, err := asInt(pos, w.Elems[j].V)
		if err != nil {
			return nil, err
		}
		if col < acc+wj {
			J = j
			break
		}
		acc += wj
	}
	if J < 0 {
		return nil, errf(pos, "GetProcessor: column %d outside generalised block", col)
	}
	// Locate the row slice within column J.
	var I int64 = -1
	acc = 0
	for i := int64(0); i < m; i++ {
		hij, err := hAt(i, J, i, J)
		if err != nil {
			return nil, err
		}
		if row < acc+hij {
			I = i
			break
		}
		acc += hij
	}
	if I < 0 {
		return nil, errf(pos, "GetProcessor: row %d outside generalised block", row)
	}
	iCell, ok1 := out.Fields["I"]
	jCell, ok2 := out.Fields["J"]
	if !ok1 || !ok2 {
		return nil, errf(pos, "GetProcessor: output struct needs fields I and J")
	}
	iCell.V = IntVal(I)
	jCell.V = IntVal(J)
	return IntVal(0), nil
}

// BuildDAG interprets the scheme declaration into a task graph. Par loops
// fork: every activity generated by an iteration starts at the loop entry;
// the loop joins all iterations at its end. Sequential composition chains.
// Control-flow computation (loop variables, host-function calls) executes
// sequentially during interpretation and costs nothing.
func (inst *Instance) BuildDAG() (*sched.DAG, error) {
	alg := inst.Model.File.Algorithm
	d := &sched.DAG{}
	b := &dagBuilder{inst: inst, d: d}
	e := newEnv(inst.paramEnv)
	if _, err := b.exec(alg.Scheme, e, nil); err != nil {
		return nil, err
	}
	return d, nil
}

// dagBuilder interprets scheme statements, threading dependency frontiers.
type dagBuilder struct {
	inst *Instance
	d    *sched.DAG
}

// join collapses a wide frontier into a single Nop so dependency lists
// stay small.
func (b *dagBuilder) join(f []int) []int {
	if len(f) <= 8 {
		return f
	}
	return []int{b.d.AddNop(f)}
}

// exec runs one statement with entry frontier `in`, returning the exit
// frontier.
func (b *dagBuilder) exec(s Stmt, e *env, in []int) ([]int, error) {
	switch x := s.(type) {
	case *BlockStmt:
		scope := newEnv(e)
		cur := in
		for _, st := range x.Stmts {
			out, err := b.exec(st, scope, cur)
			if err != nil {
				return nil, err
			}
			cur = out
		}
		return cur, nil

	case *DeclStmt:
		for i, name := range x.Names {
			var v Value
			switch x.Type.Kind {
			case TypeInt:
				v = IntVal(0)
			case TypeDouble:
				v = DoubleVal(0)
			case TypeStruct:
				def, ok := b.inst.it.structs[x.Type.Struct]
				if !ok {
					return nil, errf(x.Pos, "unknown struct type %q", x.Type.Struct)
				}
				v = newStruct(def)
			}
			cell, err := e.define(x.Pos, name, v)
			if err != nil {
				return nil, err
			}
			if x.Inits[i] != nil {
				iv, err := b.inst.it.eval(x.Inits[i], e)
				if err != nil {
					return nil, err
				}
				if _, err := b.inst.it.assign(x.Pos, cell, iv); err != nil {
					return nil, err
				}
			}
		}
		return in, nil

	case *ExprStmt:
		if _, err := b.inst.it.eval(x.X, e); err != nil {
			return nil, err
		}
		return in, nil

	case *IfStmt:
		ok, err := b.inst.guardHolds(x.Cond, e)
		if err != nil {
			return nil, err
		}
		if ok {
			return b.exec(x.Then, e, in)
		}
		if x.Else != nil {
			return b.exec(x.Else, e, in)
		}
		return in, nil

	case *LoopStmt:
		scope := newEnv(e)
		if x.Init != nil {
			if _, err := b.exec(x.Init, scope, nil); err != nil {
				return nil, err
			}
		}
		var parOuts []int
		cur := in
		for iter := 0; ; iter++ {
			if iter > maxLoopIterations {
				return nil, errf(x.Pos, "loop exceeded %d iterations (model bug?)", maxLoopIterations)
			}
			if x.Cond != nil {
				ok, err := b.inst.guardHolds(x.Cond, scope)
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
			} else if !x.Par {
				return nil, errf(x.Pos, "for loop without condition never terminates")
			}
			if x.Par {
				out, err := b.exec(x.Body, scope, in)
				if err != nil {
					return nil, err
				}
				parOuts = append(parOuts, out...)
				parOuts = b.join(parOuts) // keep it bounded as we go
			} else {
				out, err := b.exec(x.Body, scope, cur)
				if err != nil {
					return nil, err
				}
				cur = out
			}
			if x.Post != nil {
				if _, err := b.exec(x.Post, scope, nil); err != nil {
					return nil, err
				}
			}
		}
		if x.Par {
			if len(parOuts) == 0 {
				return in, nil
			}
			return b.join(parOuts), nil
		}
		return cur, nil

	case *ActionStmt:
		// Percentages evaluate in real arithmetic: see interp.floatDiv.
		b.inst.it.floatDiv = true
		pctV, err := b.inst.it.eval(x.Percent, e)
		b.inst.it.floatDiv = false
		if err != nil {
			return nil, err
		}
		pct, err := asDouble(x.Pos, pctV)
		if err != nil {
			return nil, err
		}
		if pct < 0 {
			return nil, errf(x.Pos, "negative percentage %g", pct)
		}
		if x.B == nil {
			proc, err := b.inst.evalCoords(x.Pos, x.A, e)
			if err != nil {
				return nil, err
			}
			units := pct / 100 * b.inst.CompVolume[proc]
			id := b.d.AddCompute(proc, units, in)
			return []int{id}, nil
		}
		src, err := b.inst.evalCoords(x.Pos, x.A, e)
		if err != nil {
			return nil, err
		}
		dst, err := b.inst.evalCoords(x.Pos, x.B, e)
		if err != nil {
			return nil, err
		}
		bytes := pct / 100 * b.inst.CommVolume[src][dst]
		id := b.d.AddTransfer(src, dst, bytes, in)
		return []int{id}, nil
	}
	return nil, errf(Pos{}, "unknown statement type %T", s)
}

// maxLoopIterations bounds scheme loops against runaway models.
const maxLoopIterations = 10_000_000
