package pmdl

import (
	"strings"
	"unicode"
)

// lexer turns model source text into tokens. It supports //-line and
// /* */-block comments.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) at() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekRune2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peekRune()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peekRune2() == '/':
			for l.pos < len(l.src) && l.peekRune() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekRune2() == '*':
			start := l.at()
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peekRune() == '*' && l.peekRune2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.at()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := l.peekRune()

	switch {
	case unicode.IsLetter(r) || r == '_':
		var sb strings.Builder
		for l.pos < len(l.src) {
			c := l.peekRune()
			if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
				break
			}
			sb.WriteRune(l.advance())
		}
		text := sb.String()
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case unicode.IsDigit(r):
		var sb strings.Builder
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peekRune()
			if unicode.IsDigit(c) {
				sb.WriteRune(l.advance())
				continue
			}
			// A '.' starts a fraction only when followed by a digit
			// (so struct member access on an int-valued expression
			// never arises in this grammar, but be strict anyway).
			if c == '.' && !isFloat && unicode.IsDigit(l.peekRune2()) {
				isFloat = true
				sb.WriteRune(l.advance())
				continue
			}
			if (c == 'e' || c == 'E') && (unicode.IsDigit(l.peekRune2()) || l.peekRune2() == '-' || l.peekRune2() == '+') {
				isFloat = true
				sb.WriteRune(l.advance()) // e
				if l.peekRune() == '-' || l.peekRune() == '+' {
					sb.WriteRune(l.advance())
				}
				continue
			}
			break
		}
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Text: sb.String(), Pos: pos}, nil
	}

	// Operators and punctuation, longest match first.
	two := string(r)
	if l.pos+1 < len(l.src) {
		two = string([]rune{r, l.peekRune2()})
	}
	twoCharOps := map[string]TokKind{
		"->": TokArrow, "%%": TokPercent2, "+=": TokPlusEq, "-=": TokMinusEq,
		"++": TokInc, "--": TokDec, "==": TokEq, "!=": TokNe, "<=": TokLe,
		">=": TokGe, "&&": TokAndAnd, "||": TokOrOr,
	}
	if k, ok := twoCharOps[two]; ok {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: two, Pos: pos}, nil
	}
	oneCharOps := map[rune]TokKind{
		'(': TokLParen, ')': TokRParen, '{': TokLBrace, '}': TokRBrace,
		'[': TokLBracket, ']': TokRBracket, ';': TokSemi, ',': TokComma,
		':': TokColon, '.': TokDot, '=': TokAssign, '<': TokLt, '>': TokGt,
		'+': TokPlus, '-': TokMinus, '*': TokStar, '/': TokSlash,
		'%': TokPercent, '!': TokNot, '&': TokAmp,
	}
	if k, ok := oneCharOps[r]; ok {
		l.advance()
		return Token{Kind: k, Text: string(r), Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", r)
}

// lexAll tokenises the whole source.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
