package pmdl

import "testing"

func TestLexBasics(t *testing.T) {
	toks, err := lexAll("algorithm Em3d(int p) { coord I=p; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokAlgorithm, TokIdent, TokLParen, TokIntType, TokIdent, TokRParen,
		TokLBrace, TokCoord, TokIdent, TokAssign, TokIdent, TokSemi,
		TokRBrace, TokEOF,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "-> %% == != <= >= && || ++ -- += -= = < > + - * / % ! & . : ,"
	want := []TokKind{
		TokArrow, TokPercent2, TokEq, TokNe, TokLe, TokGe, TokAndAnd, TokOrOr,
		TokInc, TokDec, TokPlusEq, TokMinusEq, TokAssign, TokLt, TokGt,
		TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokNot, TokAmp,
		TokDot, TokColon, TokComma, TokEOF,
	}
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lexAll("42 3.5 100.0 1e6 2.5e-3")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokKind{TokInt, TokFloat, TokFloat, TokFloat, TokFloat, TokEOF}
	wantTexts := []string{"42", "3.5", "100.0", "1e6", "2.5e-3", ""}
	for i, k := range wantKinds {
		if toks[i].Kind != k || toks[i].Text != wantTexts[i] {
			t.Errorf("token %d = %s %q, want %s %q", i, toks[i].Kind, toks[i].Text, k, wantTexts[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexAll("a // line comment\n b /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, want := range []string{"a", "b", "c"} {
		if toks[i].Text != want {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, want)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lexAll("a @ b"); err == nil {
		t.Error("unexpected character accepted")
	}
	if _, err := lexAll("/* never closed"); err == nil {
		t.Error("unterminated comment accepted")
	}
}
