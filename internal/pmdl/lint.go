package pmdl

// Static lints for performance models, beyond the hard semantic rules of
// Check. The paper's toolchain compiles a model ahead of time so the
// runtime can reason about the algorithm before running it (HMPI_Timeof,
// HMPI_Group_create); the lints extend that static reasoning from
// performance to correctness. This file holds the structural lints —
// rules decidable from the AST alone — plus the two hooks the
// communication-graph lints of package modelcheck are built on:
// AutoInstantiate (bind heuristic small actual parameters) and
// UnrollScheme (symbolically unroll the scheme into a series-parallel
// trace of computations and transfers).

import (
	"fmt"
	"sort"
)

// Severity classifies a lint diagnostic.
type Severity int

// Severities.
const (
	SevWarn Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Lint diagnostic codes. Each code has exactly one triggering rule,
// documented in DESIGN.md ("Static analysis").
const (
	// LintSelfComm: a communication action or link clause whose source
	// and destination are the same abstract processor.
	LintSelfComm = "selfcomm"
	// LintSeqCycle: consecutive transfers in a sequential scheme segment
	// form a cycle, which deadlocks under a rendezvous send-first
	// lowering.
	LintSeqCycle = "seqcycle"
	// LintUnusedCoord: a coordinate declared in coord but referenced
	// nowhere in node, link, parent or scheme.
	LintUnusedCoord = "unusedcoord"
	// LintLinkUnused: a pair with declared link volume that the scheme
	// never transfers between.
	LintLinkUnused = "linkunused"
	// LintNoLink: a scheme transfer between a pair with no declared link
	// volume.
	LintNoLink = "nolink"
	// LintConstIndex: a constant array subscript or coordinate target
	// that is negative or exceeds a constant declared bound.
	LintConstIndex = "constindex"
	// LintNoInstance: the model could not be instantiated for the
	// communication-graph lints (advisory; pass explicit arguments).
	LintNoInstance = "noinstance"
)

// Diag is one lint finding.
type Diag struct {
	Pos      Pos
	Code     string
	Severity Severity
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s %s: %s", d.Pos, d.Severity, d.Code, d.Message)
}

// diagf appends a finding.
func diagf(diags []Diag, pos Pos, code string, sev Severity, format string, args ...any) []Diag {
	return append(diags, Diag{Pos: pos, Code: code, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// Lint runs the structural lints on a checked model file. The
// instantiation-dependent lints live in internal/analysis/modelcheck,
// which calls this first.
func Lint(m *Model) []Diag {
	var diags []Diag
	alg := m.File.Algorithm
	diags = append(diags, lintUnusedCoords(alg)...)
	diags = append(diags, lintStructuralSelfComm(alg)...)
	diags = append(diags, lintConstIndices(alg)...)
	SortDiags(diags)
	return diags
}

// SortDiags orders diagnostics by source position, then code.
func SortDiags(diags []Diag) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
}

// lintUnusedCoords reports coordinates never referenced outside their own
// declaration.
func lintUnusedCoords(alg *Algorithm) []Diag {
	used := make(map[string]bool)
	mark := func(e Expr) {
		walkExpr(e, func(x Expr) {
			if id, ok := x.(*Ident); ok {
				used[id.Name] = true
			}
		})
	}
	for _, cl := range alg.Nodes {
		mark(cl.Guard)
		mark(cl.Volume)
	}
	if alg.Link != nil {
		for _, lv := range alg.Link.Vars {
			mark(lv.Size)
		}
		for _, cl := range alg.Link.Clauses {
			mark(cl.Guard)
			mark(cl.Volume)
			for _, e := range cl.Src {
				mark(e)
			}
			for _, e := range cl.Dst {
				mark(e)
			}
		}
	}
	for _, e := range alg.Parent {
		mark(e)
	}
	walkStmt(alg.Scheme, func(s Stmt) {
		forEachStmtExpr(s, mark)
	})
	var diags []Diag
	for _, cv := range alg.Coords {
		if !used[cv.Name] {
			diags = diagf(diags, cv.Pos, LintUnusedCoord, SevWarn,
				"coordinate %s is declared but never used in node, link, parent or scheme", cv.Name)
		}
	}
	return diags
}

// lintStructuralSelfComm reports transfers whose source and destination
// coordinate lists are syntactically identical: [i]->[i] cannot describe a
// real communication, and the runtime silently drops the volume.
func lintStructuralSelfComm(alg *Algorithm) []Diag {
	var diags []Diag
	if alg.Link != nil {
		for _, cl := range alg.Link.Clauses {
			if exprListEqual(cl.Src, cl.Dst) {
				diags = diagf(diags, cl.Pos, LintSelfComm, SevError,
					"link clause transfers from a processor to itself; self transfers carry no cost and are dropped")
			}
		}
	}
	walkStmt(alg.Scheme, func(s Stmt) {
		a, ok := s.(*ActionStmt)
		if !ok || a.B == nil {
			return
		}
		if exprListEqual(a.A, a.B) {
			diags = diagf(diags, a.Pos, LintSelfComm, SevError,
				"communication action sends from a processor to itself")
		}
	})
	return diags
}

// lintConstIndices reports constant subscripts and coordinate targets that
// are provably out of range: negative anywhere, or >= a bound that is
// itself a literal (coordinate ranges like coord I=4, parameter dimensions
// like int v[3]).
func lintConstIndices(alg *Algorithm) []Diag {
	var diags []Diag
	params := make(map[string]Param, len(alg.Params))
	for _, p := range alg.Params {
		params[p.Name] = p
	}
	coordBound := func(i int) (int64, bool) {
		if i >= len(alg.Coords) {
			return 0, false
		}
		return constValue(alg.Coords[i].Size)
	}

	checkTargets := func(pos Pos, exprs []Expr) {
		for i, e := range exprs {
			c, ok := constValue(e)
			if !ok {
				continue
			}
			if c < 0 {
				diags = diagf(diags, pos, LintConstIndex, SevError,
					"coordinate target %d is negative", c)
				continue
			}
			if bound, ok := coordBound(i); ok && c >= bound {
				diags = diagf(diags, pos, LintConstIndex, SevError,
					"coordinate target %d is out of range [0,%d)", c, bound)
			}
		}
	}
	checkIndexChain := func(e Expr) {
		// Unwind x[i][j]... into base identifier plus subscripts in
		// declaration order.
		var subs []Expr
		base := e
		for {
			ix, ok := base.(*IndexExpr)
			if !ok {
				break
			}
			subs = append([]Expr{ix.Idx}, subs...)
			base = ix.X
		}
		id, ok := base.(*Ident)
		if !ok {
			return
		}
		prm, ok := params[id.Name]
		if !ok {
			return
		}
		for i, sub := range subs {
			c, ok := constValue(sub)
			if !ok || i >= len(prm.Dims) {
				continue
			}
			if c < 0 {
				diags = diagf(diags, exprPos(sub), LintConstIndex, SevError,
					"index %d of %s is negative", c, id.Name)
				continue
			}
			if bound, ok := constValue(prm.Dims[i]); ok && c >= bound {
				diags = diagf(diags, exprPos(sub), LintConstIndex, SevError,
					"index %d of %s is out of range [0,%d)", c, id.Name, bound)
			}
		}
	}
	checkExpr := func(e Expr) {
		walkExpr(e, func(x Expr) {
			if _, ok := x.(*IndexExpr); ok {
				checkIndexChain(x)
			}
		})
	}

	for _, cl := range alg.Nodes {
		checkExpr(cl.Guard)
		checkExpr(cl.Volume)
	}
	if alg.Link != nil {
		for _, cl := range alg.Link.Clauses {
			checkExpr(cl.Guard)
			checkExpr(cl.Volume)
			checkTargets(cl.Pos, cl.Src)
			checkTargets(cl.Pos, cl.Dst)
		}
	}
	if alg.Parent != nil {
		checkTargets(alg.Pos, alg.Parent)
	}
	walkStmt(alg.Scheme, func(s Stmt) {
		switch x := s.(type) {
		case *ActionStmt:
			checkExpr(x.Percent)
			checkTargets(x.Pos, x.A)
			if x.B != nil {
				checkTargets(x.Pos, x.B)
			}
		default:
			forEachStmtExpr(s, checkExpr)
		}
	})
	return diags
}

// constValue evaluates literal-only integer expressions: IntLit, unary
// minus, and binary arithmetic over them.
func constValue(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Value, true
	case *UnaryExpr:
		if x.Op == TokMinus {
			v, ok := constValue(x.X)
			return -v, ok
		}
	case *BinaryExpr:
		a, ok1 := constValue(x.X)
		b, ok2 := constValue(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case TokPlus:
			return a + b, true
		case TokMinus:
			return a - b, true
		case TokStar:
			return a * b, true
		case TokSlash:
			if b != 0 {
				return a / b, true
			}
		case TokPercent:
			if b != 0 {
				return a % b, true
			}
		}
	}
	return 0, false
}

// --- AST walking helpers -------------------------------------------------

// walkExpr calls fn on e and every sub-expression.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *MemberExpr:
		walkExpr(x.X, fn)
	case *IndexExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Idx, fn)
	case *CallExpr:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *BinaryExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Y, fn)
	case *AssignExpr:
		walkExpr(x.LHS, fn)
		walkExpr(x.RHS, fn)
	case *IncDecExpr:
		walkExpr(x.X, fn)
	}
}

// walkStmt calls fn on s and every nested statement.
func walkStmt(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch x := s.(type) {
	case *BlockStmt:
		for _, st := range x.Stmts {
			walkStmt(st, fn)
		}
	case *LoopStmt:
		walkStmt(x.Init, fn)
		walkStmt(x.Post, fn)
		walkStmt(x.Body, fn)
	case *IfStmt:
		walkStmt(x.Then, fn)
		walkStmt(x.Else, fn)
	}
}

// forEachStmtExpr calls fn on the expressions directly held by s (not those
// of nested statements).
func forEachStmtExpr(s Stmt, fn func(Expr)) {
	switch x := s.(type) {
	case *DeclStmt:
		for _, init := range x.Inits {
			if init != nil {
				fn(init)
			}
		}
	case *LoopStmt:
		if x.Cond != nil {
			fn(x.Cond)
		}
	case *IfStmt:
		fn(x.Cond)
	case *ExprStmt:
		fn(x.X)
	case *ActionStmt:
		fn(x.Percent)
		for _, e := range x.A {
			fn(e)
		}
		for _, e := range x.B {
			fn(e)
		}
	}
}

// exprListEqual reports syntactic equality of two expression lists.
func exprListEqual(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !exprEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// exprEqual reports structural equality of two expressions, ignoring
// positions.
func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *IntLit:
		y, ok := b.(*IntLit)
		return ok && x.Value == y.Value
	case *FloatLit:
		y, ok := b.(*FloatLit)
		return ok && x.Value == y.Value
	case *Ident:
		y, ok := b.(*Ident)
		return ok && x.Name == y.Name
	case *MemberExpr:
		y, ok := b.(*MemberExpr)
		return ok && x.Name == y.Name && exprEqual(x.X, y.X)
	case *IndexExpr:
		y, ok := b.(*IndexExpr)
		return ok && exprEqual(x.X, y.X) && exprEqual(x.Idx, y.Idx)
	case *CallExpr:
		y, ok := b.(*CallExpr)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		return exprListEqual(x.Args, y.Args)
	case *UnaryExpr:
		y, ok := b.(*UnaryExpr)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X)
	case *BinaryExpr:
		y, ok := b.(*BinaryExpr)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X) && exprEqual(x.Y, y.Y)
	case *SizeofExpr:
		y, ok := b.(*SizeofExpr)
		return ok && x.Type == y.Type
	}
	return false
}

// --- Auto-instantiation --------------------------------------------------

// AutoInstantiate binds heuristic small actual parameters — scalar ints
// become 2, doubles 1.0, integer arrays are filled with ones — and
// evaluates the model. The communication-graph lints use the resulting
// tiny instance to unroll the scheme; models whose parameters carry
// non-trivial invariants (block sizes that must divide, distributions that
// must tile) may fail to auto-instantiate, in which case callers fall back
// to explicit arguments.
func (m *Model) AutoInstantiate() (*Instance, error) {
	alg := m.File.Algorithm
	structs := make(map[string]*StructDef, len(m.File.Typedefs))
	for _, td := range m.File.Typedefs {
		structs[td.Name] = td
	}
	it := &interp{structs: structs, hosts: m.hosts}
	e := newEnv(nil)
	args := make([]any, 0, len(alg.Params))
	for _, prm := range alg.Params {
		if len(prm.Dims) == 0 {
			if prm.Type.Kind == TypeDouble {
				args = append(args, 1.0)
				if _, err := e.define(prm.Pos, prm.Name, DoubleVal(1)); err != nil {
					return nil, err
				}
			} else {
				args = append(args, 2)
				if _, err := e.define(prm.Pos, prm.Name, IntVal(2)); err != nil {
					return nil, err
				}
			}
			continue
		}
		dims := make([]int, len(prm.Dims))
		for i, de := range prm.Dims {
			v, err := it.eval(de, e)
			if err != nil {
				return nil, err
			}
			n, err := asInt(prm.Pos, v)
			if err != nil {
				return nil, err
			}
			if n <= 0 || n > 64 {
				return nil, errf(prm.Pos, "parameter %s: auto-instantiated dimension %d out of range", prm.Name, n)
			}
			dims[i] = int(n)
		}
		arr, err := onesSlice(prm, dims)
		if err != nil {
			return nil, err
		}
		args = append(args, arr)
		av := newArray(dims)
		for i := range av.Elems {
			av.Elems[i].V = IntVal(1)
		}
		if _, err := e.define(prm.Pos, prm.Name, av); err != nil {
			return nil, err
		}
	}
	return m.Instantiate(args...)
}

// onesSlice builds the nested Go slice of ones matching the declared
// dimensionality.
func onesSlice(prm Param, dims []int) (any, error) {
	if prm.Type.Kind == TypeDouble {
		if len(dims) != 1 {
			return nil, errf(prm.Pos, "cannot auto-instantiate multi-dimensional double parameter %s", prm.Name)
		}
		out := make([]float64, dims[0])
		for i := range out {
			out[i] = 1
		}
		return out, nil
	}
	switch len(dims) {
	case 1:
		out := make([]int, dims[0])
		for i := range out {
			out[i] = 1
		}
		return out, nil
	case 2:
		out := make([][]int, dims[0])
		for i := range out {
			row := make([]int, dims[1])
			for j := range row {
				row[j] = 1
			}
			out[i] = row
		}
		return out, nil
	case 3:
		out := make([][][]int, dims[0])
		for i := range out {
			inner, _ := onesSlice(prm, dims[1:])
			out[i] = inner.([][]int)
		}
		return out, nil
	case 4:
		out := make([][][][]int, dims[0])
		for i := range out {
			inner, _ := onesSlice(prm, dims[1:])
			out[i] = inner.([][][]int)
		}
		return out, nil
	}
	return nil, errf(prm.Pos, "cannot auto-instantiate %d-dimensional parameter %s", len(dims), prm.Name)
}

// --- Symbolic scheme unrolling -------------------------------------------

// TraceOp is one activity of the unrolled scheme: a computation on Src
// (Dst == -1) or a transfer Src -> Dst, in abstract processor indices.
type TraceOp struct {
	Src, Dst int
	Pos      Pos
}

// Comm reports whether the op is a transfer.
func (op *TraceOp) Comm() bool { return op.Dst >= 0 }

// TraceNode is a series-parallel trace of the scheme: either a leaf
// activity (Op non-nil) or a composition of children — sequential when Par
// is false, concurrent when true. It is the communication structure the
// modelcheck lints analyse, mirroring how BuildDAG threads dependencies.
type TraceNode struct {
	Par  bool
	Op   *TraceOp
	Kids []*TraceNode
}

// Ops appends every leaf activity under n to out, in scheme order.
func (n *TraceNode) Ops(out []*TraceOp) []*TraceOp {
	if n == nil {
		return out
	}
	if n.Op != nil {
		return append(out, n.Op)
	}
	for _, k := range n.Kids {
		out = k.Ops(out)
	}
	return out
}

// UnrollScheme symbolically executes the scheme declaration, evaluating
// control flow exactly as BuildDAG does, but records the series-parallel
// structure of the generated activities instead of a dependency DAG.
func (inst *Instance) UnrollScheme() (*TraceNode, error) {
	u := &unroller{inst: inst}
	n, err := u.stmt(inst.Model.File.Algorithm.Scheme, newEnv(inst.paramEnv))
	if err != nil {
		return nil, err
	}
	if n == nil {
		n = &TraceNode{}
	}
	return n, nil
}

type unroller struct {
	inst *Instance
	ops  int
}

// maxUnrollOps bounds the trace size; lint instantiations are tiny, so a
// model hitting this is itself suspect.
const maxUnrollOps = 1 << 20

// seqNode wraps children in a sequential composition, collapsing the
// trivial cases.
func seqNode(kids []*TraceNode) *TraceNode {
	switch len(kids) {
	case 0:
		return nil
	case 1:
		return kids[0]
	}
	return &TraceNode{Kids: kids}
}

func (u *unroller) stmt(s Stmt, e *env) (*TraceNode, error) {
	switch x := s.(type) {
	case *BlockStmt:
		scope := newEnv(e)
		var kids []*TraceNode
		for _, st := range x.Stmts {
			n, err := u.stmt(st, scope)
			if err != nil {
				return nil, err
			}
			if n != nil {
				kids = append(kids, n)
			}
		}
		return seqNode(kids), nil

	case *DeclStmt:
		for i, name := range x.Names {
			var v Value
			switch x.Type.Kind {
			case TypeInt:
				v = IntVal(0)
			case TypeDouble:
				v = DoubleVal(0)
			case TypeStruct:
				def, ok := u.inst.it.structs[x.Type.Struct]
				if !ok {
					return nil, errf(x.Pos, "unknown struct type %q", x.Type.Struct)
				}
				v = newStruct(def)
			}
			cell, err := e.define(x.Pos, name, v)
			if err != nil {
				return nil, err
			}
			if x.Inits[i] != nil {
				iv, err := u.inst.it.eval(x.Inits[i], e)
				if err != nil {
					return nil, err
				}
				if _, err := u.inst.it.assign(x.Pos, cell, iv); err != nil {
					return nil, err
				}
			}
		}
		return nil, nil

	case *ExprStmt:
		if _, err := u.inst.it.eval(x.X, e); err != nil {
			return nil, err
		}
		return nil, nil

	case *IfStmt:
		ok, err := u.inst.guardHolds(x.Cond, e)
		if err != nil {
			return nil, err
		}
		if ok {
			return u.stmt(x.Then, e)
		}
		if x.Else != nil {
			return u.stmt(x.Else, e)
		}
		return nil, nil

	case *LoopStmt:
		scope := newEnv(e)
		if x.Init != nil {
			if _, err := u.stmt(x.Init, scope); err != nil {
				return nil, err
			}
		}
		var kids []*TraceNode
		for iter := 0; ; iter++ {
			if iter > maxLoopIterations {
				return nil, errf(x.Pos, "loop exceeded %d iterations (model bug?)", maxLoopIterations)
			}
			if x.Cond != nil {
				ok, err := u.inst.guardHolds(x.Cond, scope)
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
			} else if !x.Par {
				return nil, errf(x.Pos, "for loop without condition never terminates")
			}
			n, err := u.stmt(x.Body, scope)
			if err != nil {
				return nil, err
			}
			if n != nil {
				kids = append(kids, n)
			}
			if x.Post != nil {
				if _, err := u.stmt(x.Post, scope); err != nil {
					return nil, err
				}
			}
		}
		if x.Par {
			if len(kids) == 0 {
				return nil, nil
			}
			if len(kids) == 1 {
				return kids[0], nil
			}
			return &TraceNode{Par: true, Kids: kids}, nil
		}
		return seqNode(kids), nil

	case *ActionStmt:
		u.ops++
		if u.ops > maxUnrollOps {
			return nil, errf(x.Pos, "scheme unrolls to more than %d activities", maxUnrollOps)
		}
		// Evaluate the percentage for its diagnostics (division by
		// zero), exactly as BuildDAG would.
		u.inst.it.floatDiv = true
		_, err := u.inst.it.eval(x.Percent, e)
		u.inst.it.floatDiv = false
		if err != nil {
			return nil, err
		}
		src, err := u.inst.evalCoords(x.Pos, x.A, e)
		if err != nil {
			return nil, err
		}
		dst := -1
		if x.B != nil {
			dst, err = u.inst.evalCoords(x.Pos, x.B, e)
			if err != nil {
				return nil, err
			}
		}
		return &TraceNode{Op: &TraceOp{Src: src, Dst: dst, Pos: x.Pos}}, nil
	}
	return nil, errf(Pos{}, "unknown statement type %T", s)
}
