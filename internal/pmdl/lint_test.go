package pmdl

import (
	"os"
	"path/filepath"
	"testing"
)

func mustModelFile(t *testing.T, path string) *Model {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseModel(string(src))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return m
}

func codesOf(diags []Diag) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	return out
}

// TestLintStructural exercises the AST-only lints through their fixtures.
func TestLintStructural(t *testing.T) {
	cases := []struct {
		fixture string
		want    []string // expected codes from the structural pass, in order
	}{
		{"clean.mpc", nil},
		{"selfcomm.mpc", []string{LintSelfComm}},
		{"unusedcoord.mpc", []string{LintUnusedCoord}},
		{"constindex.mpc", []string{LintConstIndex, LintConstIndex}},
		{"seqcycle.mpc", nil},   // dynamic-only: caught by modelcheck
		{"linkunused.mpc", nil}, // dynamic-only
		{"nolink.mpc", nil},     // dynamic-only
		{"noinstance.mpc", nil}, // dynamic-only
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			m := mustModelFile(t, filepath.Join("testdata", "lint", tc.fixture))
			got := codesOf(Lint(m))
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestAutoInstantiate(t *testing.T) {
	m := mustModelFile(t, filepath.Join("testdata", "lint", "clean.mpc"))
	inst, err := m.AutoInstantiate()
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumProcs != 2 {
		t.Fatalf("NumProcs = %d, want 2 (scalars auto-bind to 2)", inst.NumProcs)
	}
	if inst.CommVolume[0][1] <= 0 || inst.CommVolume[1][0] <= 0 {
		t.Fatalf("expected positive link volumes, got %v", inst.CommVolume)
	}
}

func TestAutoInstantiateFailure(t *testing.T) {
	m := mustModelFile(t, filepath.Join("testdata", "lint", "noinstance.mpc"))
	if _, err := m.AutoInstantiate(); err == nil {
		t.Fatal("expected auto-instantiation to fail (division by zero at q=2)")
	}
}

// TestAutoInstantiateShippedModels pins the heuristic to the shipped model
// set: every model in models/ must instantiate with the automatic small
// arguments, so pmc -lint and hmpivet can analyse them with no -args.
func TestAutoInstantiateShippedModels(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "models", "*.mpc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no shipped models found: %v", err)
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			m := mustModelFile(t, p)
			inst, err := m.AutoInstantiate()
			if err != nil {
				t.Fatalf("auto-instantiate: %v", err)
			}
			if inst.NumProcs < 2 {
				t.Fatalf("NumProcs = %d, want >= 2", inst.NumProcs)
			}
		})
	}
}

func TestUnrollSchemeStructure(t *testing.T) {
	m := mustModelFile(t, filepath.Join("testdata", "lint", "clean.mpc"))
	inst, err := m.AutoInstantiate()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := inst.UnrollScheme()
	if err != nil {
		t.Fatal(err)
	}
	if trace.Par || len(trace.Kids) != 2 {
		t.Fatalf("expected sequential root with 2 phases, got par=%v kids=%d", trace.Par, len(trace.Kids))
	}
	ops := trace.Ops(nil)
	var comms, comps int
	for _, op := range ops {
		if op.Comm() {
			comms++
		} else {
			comps++
		}
	}
	if comms != 2 || comps != 2 {
		t.Fatalf("got %d transfers, %d computations; want 2 and 2", comms, comps)
	}
}

func TestUnrollSchemeSequentialRun(t *testing.T) {
	m := mustModelFile(t, filepath.Join("testdata", "lint", "seqcycle.mpc"))
	inst, err := m.AutoInstantiate()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := inst.UnrollScheme()
	if err != nil {
		t.Fatal(err)
	}
	if trace.Par || len(trace.Kids) != 2 {
		t.Fatalf("expected a sequential run of 2 transfers, got par=%v kids=%d", trace.Par, len(trace.Kids))
	}
	for _, k := range trace.Kids {
		if k.Op == nil || !k.Op.Comm() {
			t.Fatalf("expected comm leaves, got %+v", k)
		}
	}
}
