package pmdl

// End-to-end tests of the two performance models published in the paper:
// Em3d (Figure 4) and ParallelAxB (Figure 7). The sources below follow the
// figures; two typesetting defects of the figure are corrected (the
// four-dimensional declaration of h, and the figure's w[I] in the first
// link clause where the accompanying text derives w[J]).

import (
	"math"
	"testing"

	"repro/internal/sched"
)

const em3dSrc = `
algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
  coord I=p;
  node {I>=0: bench*(d[I]/k);};
  link (L=p) {
    I>=0 && I!=L && (dep[I][L] > 0) :
      length*(dep[I][L]*sizeof(double)) [L]->[I];
  };
  parent[0];
  scheme {
    int current, owner, remote;
    par (owner = 0; owner < p; owner++)
        par (remote = 0; remote < p; remote++)
             if ((owner != remote) && (dep[owner][remote] > 0))
                100%%[remote]->[owner];
    par (current = 0; current < p; current++) 100%%[current];
  };
}
`

const parallelAxBSrc = `
typedef struct {int I; int J;} Processor;

algorithm ParallelAxB(int m, int r, int n, int l, int w[m],
                      int h[m][m][m][m])
{
  coord I=m, J=m;
  node {I>=0 && J>=0: bench*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*n);};
  link (K=m, L=m)
  {
    I>=0 && J>=0 && I!=K :
      length*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*(r*r)*sizeof(double))
              [I, J] -> [K, J];
    I>=0 && J>=0 && J!=L && ((h[I][J][K][L]) > 0) :
      length*(w[J]*(h[I][J][K][L])*(n/l)*(n/l)*(r*r)*sizeof(double))
              [I, J] -> [K, L];
  };
  parent[0,0];
  scheme
  {
    int k;
    Processor Root, Receiver, Current;
    for(k = 0; k < n; k++)
    {
      int Acolumn = k%l, Arow;
      int Brow = k%l, Bcolumn;
      par(Arow = 0; Arow < l; )
      {
        GetProcessor(Arow, Acolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          par(Receiver.J = 0; Receiver.J < m; Receiver.J++)
            if((Root.I != Receiver.I || Root.J != Receiver.J) &&
               Root.J != Receiver.J)
              if((h[Root.I][Root.J][Receiver.I][Receiver.J]) > 0)
                (100/(w[Root.J]*(n/l)))%%
                       [Root.I, Root.J] -> [Receiver.I, Receiver.J];
        Arow += h[Root.I][Root.J][Root.I][Root.J];
      }
      par(Bcolumn = 0; Bcolumn < l; )
      {
        GetProcessor(Brow, Bcolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          if(Root.I != Receiver.I)
            (100/((h[Root.I][Root.J][Root.I][Root.J])*(n/l))) %%
                  [Root.I, Root.J] -> [Receiver.I, Root.J];
        Bcolumn += w[Root.J];
      }
      par(Current.I = 0; Current.I < m; Current.I++)
        par(Current.J = 0; Current.J < m; Current.J++)
          (100/n) %% [Current.I, Current.J];
    }
  };
};
`

func TestEm3dModelParses(t *testing.T) {
	m, err := ParseModel(em3dSrc)
	if err != nil {
		t.Fatal(err)
	}
	alg := m.File.Algorithm
	if alg.Name != "Em3d" {
		t.Errorf("name = %q", alg.Name)
	}
	if len(alg.Params) != 4 || alg.Params[2].Name != "d" || len(alg.Params[3].Dims) != 2 {
		t.Errorf("params parsed wrong: %+v", alg.Params)
	}
	if len(alg.Coords) != 1 || alg.Coords[0].Name != "I" {
		t.Errorf("coords parsed wrong")
	}
	if len(alg.Nodes) != 1 || alg.Link == nil || len(alg.Link.Clauses) != 1 {
		t.Errorf("node/link parsed wrong")
	}
	if len(alg.Parent) != 1 {
		t.Errorf("parent parsed wrong")
	}
}

func em3dInstance(t *testing.T) *Instance {
	t.Helper()
	m, err := ParseModel(em3dSrc)
	if err != nil {
		t.Fatal(err)
	}
	d := []int{200, 300, 500}
	dep := [][]int{
		{0, 10, 5},
		{10, 0, 20},
		{5, 20, 0},
	}
	inst, err := m.Instantiate(3, 100, d, dep)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestEm3dInstantiate(t *testing.T) {
	inst := em3dInstance(t)
	if inst.NumProcs != 3 {
		t.Fatalf("NumProcs = %d", inst.NumProcs)
	}
	// node: bench*(d[I]/k), integer division: 200/100=2, 300/100=3, 500/100=5.
	want := []float64{2, 3, 5}
	for i, w := range want {
		if inst.CompVolume[i] != w {
			t.Errorf("CompVolume[%d] = %v, want %v", i, inst.CompVolume[i], w)
		}
	}
	// link: from L to I carries dep[I][L]*8 bytes.
	if inst.CommVolume[1][0] != 10*8 {
		t.Errorf("CommVolume[1][0] = %v, want 80", inst.CommVolume[1][0])
	}
	if inst.CommVolume[2][1] != 20*8 {
		t.Errorf("CommVolume[2][1] = %v, want 160", inst.CommVolume[2][1])
	}
	if inst.CommVolume[0][0] != 0 {
		t.Errorf("self volume non-zero")
	}
	if inst.Parent != 0 {
		t.Errorf("parent = %d", inst.Parent)
	}
}

func TestEm3dDAGStructure(t *testing.T) {
	inst := em3dInstance(t)
	dag, err := inst.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	var computes, transfers int
	for _, task := range dag.Tasks {
		switch task.Kind {
		case sched.KindCompute:
			computes++
		case sched.KindTransfer:
			transfers++
		}
	}
	if computes != 3 {
		t.Errorf("computes = %d, want 3", computes)
	}
	// dep has 6 non-zero off-diagonal entries.
	if transfers != 6 {
		t.Errorf("transfers = %d, want 6", transfers)
	}
}

func TestEm3dEstimatedTimeTracksSpeeds(t *testing.T) {
	inst := em3dInstance(t)
	dag, err := inst.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	res := func(speeds []float64) sched.Resources {
		return sched.Resources{
			Speed:        func(p int) float64 { return speeds[p] },
			Link:         func(src, dst int) sched.Link { return sched.Link{Latency: 1e-4, Bandwidth: 1e7} },
			SerialiseNIC: true,
		}
	}
	// Largest subbody (vol 5) on the fastest machine beats the reverse.
	good := sched.Makespan(dag, 3, res([]float64{1, 2, 10}))
	bad := sched.Makespan(dag, 3, res([]float64{10, 2, 1}))
	if good >= bad {
		t.Fatalf("good mapping %v not faster than bad mapping %v", good, bad)
	}
	// Communication matters: zero-latency infinite bandwidth is faster.
	ideal := sched.Resources{
		Speed:        func(p int) float64 { return []float64{1, 2, 10}[p] },
		Link:         func(src, dst int) sched.Link { return sched.Link{Bandwidth: 1e15} },
		SerialiseNIC: true,
	}
	if sched.Makespan(dag, 3, ideal) > good {
		t.Fatalf("ideal network slower than real one")
	}
}

func TestParallelAxBParses(t *testing.T) {
	m, err := ParseModel(parallelAxBSrc)
	if err != nil {
		t.Fatal(err)
	}
	alg := m.File.Algorithm
	if alg.Name != "ParallelAxB" {
		t.Fatalf("name = %q", alg.Name)
	}
	if len(m.File.Typedefs) != 1 || m.File.Typedefs[0].Name != "Processor" {
		t.Fatalf("typedef parsed wrong")
	}
	if len(alg.Coords) != 2 {
		t.Fatalf("coords = %d", len(alg.Coords))
	}
	if len(alg.Link.Vars) != 2 || len(alg.Link.Clauses) != 2 {
		t.Fatalf("link parsed wrong")
	}
	if len(alg.Parent) != 2 {
		t.Fatalf("parent parsed wrong")
	}
}

// uniformAxB instantiates ParallelAxB on a 2x2 grid with uniform unit
// rectangles (l=2), n=4 blocks, r=2.
func uniformAxB(t *testing.T) *Instance {
	t.Helper()
	m, err := ParseModel(parallelAxBSrc)
	if err != nil {
		t.Fatal(err)
	}
	const (
		grid = 2
		r    = 2
		n    = 4
		l    = 2
	)
	w := []int{1, 1}
	h := make([][][][]int, grid)
	for i := range h {
		h[i] = make([][][]int, grid)
		for j := range h[i] {
			h[i][j] = make([][]int, grid)
			for k := range h[i][j] {
				h[i][j][k] = make([]int, grid)
				for q := range h[i][j][k] {
					// Uniform 1-block rectangles: row intervals are
					// {i} and {k}; overlap is 1 when i == k.
					if i == k {
						h[i][j][k][q] = 1
					}
				}
			}
		}
	}
	inst, err := m.Instantiate(grid, r, n, l, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestParallelAxBInstantiate(t *testing.T) {
	inst := uniformAxB(t)
	if inst.NumProcs != 4 {
		t.Fatalf("NumProcs = %d", inst.NumProcs)
	}
	// node: w[J]*h*(n/l)^2*n = 1*1*2*2*4 = 16 for every processor.
	for p, v := range inst.CompVolume {
		if v != 16 {
			t.Errorf("CompVolume[%d] = %v, want 16", p, v)
		}
	}
	// B volume between same-column processors: 1*1*(n/l)^2*r^2*8 = 128.
	// Processor (0,0) is index 0, (1,0) is index 2 (row-major I,J).
	if inst.CommVolume[0][2] != 128 {
		t.Errorf("B volume (0,0)->(1,0) = %v, want 128", inst.CommVolume[0][2])
	}
	// A volume between same-row processors: also 128 here.
	if inst.CommVolume[0][1] != 128 {
		t.Errorf("A volume (0,0)->(0,1) = %v, want 128", inst.CommVolume[0][1])
	}
	// Diagonal pairs exchange A too (h>0 for equal rows only): (0,0) and
	// (1,1) have disjoint rows, so no volume.
	if inst.CommVolume[0][3] != 0 {
		t.Errorf("diagonal volume = %v, want 0", inst.CommVolume[0][3])
	}
	if inst.Parent != 0 {
		t.Errorf("parent = %d", inst.Parent)
	}
}

func TestParallelAxBDAG(t *testing.T) {
	inst := uniformAxB(t)
	dag, err := inst.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	var computes, transfers int
	var units, bytes float64
	for _, task := range dag.Tasks {
		switch task.Kind {
		case sched.KindCompute:
			computes++
			units += task.Units
		case sched.KindTransfer:
			transfers++
			bytes += task.Bytes
		}
	}
	// n=4 steps, 4 processors each: 16 compute tasks of (100/4)% each.
	if computes != 16 {
		t.Errorf("computes = %d, want 16", computes)
	}
	// Each step: pivot column rows l=2 owners send A to 1 same-row
	// receiver each (2 transfers), pivot row cols 2 owners send B to 1
	// same-column receiver (2 transfers): 4 per step, 16 total.
	if transfers != 16 {
		t.Errorf("transfers = %d, want 16", transfers)
	}
	// Total executed computation = 100% of all volumes (100/n exact here).
	wantUnits := inst.TotalCompVolume()
	if math.Abs(units-wantUnits) > 1e-9 {
		t.Errorf("DAG compute units %v, want %v", units, wantUnits)
	}
	// Total transferred bytes = 100% of all link volumes (percentages
	// divide evenly in this configuration).
	wantBytes := inst.TotalCommVolume()
	if math.Abs(bytes-wantBytes) > 1e-9 {
		t.Errorf("DAG bytes %v, want %v", bytes, wantBytes)
	}
	// Schedule it.
	res := sched.Resources{
		Speed:        func(p int) float64 { return 100 },
		Link:         func(src, dst int) sched.Link { return sched.Link{Latency: 1e-4, Bandwidth: 1e7} },
		SerialiseNIC: true,
	}
	if ms := sched.Makespan(dag, 4, res); ms <= 0 {
		t.Errorf("makespan = %v", ms)
	}
}

func TestParallelAxBTimeofMonotoneInN(t *testing.T) {
	// Larger matrices must predict longer execution.
	m, err := ParseModel(parallelAxBSrc)
	if err != nil {
		t.Fatal(err)
	}
	res := sched.Resources{
		Speed:        func(p int) float64 { return 50 },
		Link:         func(src, dst int) sched.Link { return sched.Link{Latency: 1e-4, Bandwidth: 1e7} },
		SerialiseNIC: true,
	}
	w := []int{1, 1}
	h := make([][][][]int, 2)
	for i := range h {
		h[i] = make([][][]int, 2)
		for j := range h[i] {
			h[i][j] = make([][]int, 2)
			for k := range h[i][j] {
				h[i][j][k] = make([]int, 2)
				if i == k {
					h[i][j][k][0], h[i][j][k][1] = 1, 1
				}
			}
		}
	}
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16} {
		inst, err := m.Instantiate(2, 2, n, 2, w, h)
		if err != nil {
			t.Fatal(err)
		}
		dag, err := inst.BuildDAG()
		if err != nil {
			t.Fatal(err)
		}
		ms := sched.Makespan(dag, 4, res)
		if ms <= prev {
			t.Fatalf("makespan not increasing: n=%d gives %v after %v", n, ms, prev)
		}
		prev = ms
	}
}
