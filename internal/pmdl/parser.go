package pmdl

import (
	"strconv"
)

// parser is a recursive-descent parser with one token of lookahead.
type parser struct {
	toks    []Token
	pos     int
	structs map[string]bool // typedef'd struct names seen so far
}

// Parse compiles model source text into a File.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, structs: make(map[string]bool)}
	f := &File{}
	for p.peek().Kind == TokTypedef {
		td, err := p.parseTypedef()
		if err != nil {
			return nil, err
		}
		f.Typedefs = append(f.Typedefs, td)
		p.structs[td.Name] = true
	}
	alg, err := p.parseAlgorithm()
	if err != nil {
		return nil, err
	}
	f.Algorithm = alg
	if p.peek().Kind != TokEOF {
		return nil, errf(p.peek().Pos, "unexpected %s after algorithm", p.peek().Kind)
	}
	return f, nil
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	return p.advance(), nil
}

func (p *parser) accept(k TokKind) bool {
	if p.peek().Kind == k {
		p.advance()
		return true
	}
	return false
}

// parseTypedef parses: typedef struct { int a; int b; } Name ;
func (p *parser) parseTypedef() (*StructDef, error) {
	start, _ := p.expect(TokTypedef)
	if _, err := p.expect(TokStruct); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	def := &StructDef{Pos: start.Pos}
	for p.peek().Kind != TokRBrace {
		if _, err := p.expect(TokIntType); err != nil {
			return nil, err
		}
		for {
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			def.Fields = append(def.Fields, name.Text)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	p.advance() // }
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	def.Name = name.Text
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return def, nil
}

func (p *parser) parseType() (TypeRef, error) {
	t := p.peek()
	switch t.Kind {
	case TokIntType:
		p.advance()
		return TypeRef{Kind: TypeInt}, nil
	case TokDoubleType:
		p.advance()
		return TypeRef{Kind: TypeDouble}, nil
	case TokIdent:
		if p.structs[t.Text] {
			p.advance()
			return TypeRef{Kind: TypeStruct, Struct: t.Text}, nil
		}
	}
	return TypeRef{}, errf(t.Pos, "expected type, found %s %q", t.Kind, t.Text)
}

func (p *parser) isTypeStart() bool {
	switch p.peek().Kind {
	case TokIntType, TokDoubleType:
		return true
	case TokIdent:
		return p.structs[p.peek().Text]
	}
	return false
}

// parseAlgorithm parses: algorithm Name(params) { sections } [;]
func (p *parser) parseAlgorithm() (*Algorithm, error) {
	start, err := p.expect(TokAlgorithm)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	alg := &Algorithm{Name: name.Text, Pos: start.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.peek().Kind != TokRParen {
		for {
			prm, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			alg.Params = append(alg.Params, prm)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokRBrace {
		if err := p.parseSection(alg); err != nil {
			return nil, err
		}
	}
	p.advance() // }
	p.accept(TokSemi)
	if len(alg.Coords) == 0 {
		return nil, errf(alg.Pos, "algorithm %s has no coord declaration", alg.Name)
	}
	if alg.Scheme == nil {
		return nil, errf(alg.Pos, "algorithm %s has no scheme declaration", alg.Name)
	}
	return alg, nil
}

func (p *parser) parseParam() (Param, error) {
	typ, err := p.parseType()
	if err != nil {
		return Param{}, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return Param{}, err
	}
	prm := Param{Name: name.Text, Type: typ, Pos: name.Pos}
	for p.accept(TokLBracket) {
		dim, err := p.parseExpr()
		if err != nil {
			return Param{}, err
		}
		prm.Dims = append(prm.Dims, dim)
		if _, err := p.expect(TokRBracket); err != nil {
			return Param{}, err
		}
	}
	return prm, nil
}

func (p *parser) parseSection(alg *Algorithm) error {
	t := p.peek()
	switch t.Kind {
	case TokCoord:
		if alg.Coords != nil {
			return errf(t.Pos, "duplicate coord declaration")
		}
		return p.parseCoord(alg)
	case TokNode:
		if alg.Nodes != nil {
			return errf(t.Pos, "duplicate node declaration")
		}
		return p.parseNode(alg)
	case TokLink:
		if alg.Link != nil {
			return errf(t.Pos, "duplicate link declaration")
		}
		return p.parseLink(alg)
	case TokParent:
		if alg.Parent != nil {
			return errf(t.Pos, "duplicate parent declaration")
		}
		return p.parseParent(alg)
	case TokScheme:
		if alg.Scheme != nil {
			return errf(t.Pos, "duplicate scheme declaration")
		}
		return p.parseScheme(alg)
	}
	return errf(t.Pos, "expected a section (coord/node/link/parent/scheme), found %s %q", t.Kind, t.Text)
}

// parseCoord parses: coord I=p, J=m;
func (p *parser) parseCoord(alg *Algorithm) error {
	p.advance() // coord
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return err
		}
		size, err := p.parseExpr()
		if err != nil {
			return err
		}
		alg.Coords = append(alg.Coords, CoordVar{Name: name.Text, Size: size, Pos: name.Pos})
		if !p.accept(TokComma) {
			break
		}
	}
	_, err := p.expect(TokSemi)
	return err
}

// parseNode parses: node { guard : bench*(expr); ... };
func (p *parser) parseNode(alg *Algorithm) error {
	p.advance() // node
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for p.peek().Kind != TokRBrace {
		guard, err := p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(TokColon); err != nil {
			return err
		}
		bench, err := p.expect(TokBench)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokStar); err != nil {
			return err
		}
		vol, err := p.parseParenExpr()
		if err != nil {
			return err
		}
		alg.Nodes = append(alg.Nodes, NodeClause{Guard: guard, Volume: vol, Pos: bench.Pos})
		if _, err := p.expect(TokSemi); err != nil {
			return err
		}
	}
	p.advance() // }
	_, err := p.expect(TokSemi)
	return err
}

// parseLink parses: link [(K=m, L=m)] { guard : length*(expr) [I]->[J]; ... };
func (p *parser) parseLink(alg *Algorithm) error {
	start := p.advance() // link
	decl := &LinkDecl{Pos: start.Pos}
	if p.accept(TokLParen) {
		for {
			name, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			if _, err := p.expect(TokAssign); err != nil {
				return err
			}
			size, err := p.parseExpr()
			if err != nil {
				return err
			}
			decl.Vars = append(decl.Vars, CoordVar{Name: name.Text, Size: size, Pos: name.Pos})
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return err
		}
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for p.peek().Kind != TokRBrace {
		guard, err := p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(TokColon); err != nil {
			return err
		}
		lengthTok, err := p.expect(TokLength)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokStar); err != nil {
			return err
		}
		vol, err := p.parseParenExpr()
		if err != nil {
			return err
		}
		src, err := p.parseCoordList()
		if err != nil {
			return err
		}
		if _, err := p.expect(TokArrow); err != nil {
			return err
		}
		dst, err := p.parseCoordList()
		if err != nil {
			return err
		}
		decl.Clauses = append(decl.Clauses, LinkClause{
			Guard: guard, Volume: vol, Src: src, Dst: dst, Pos: lengthTok.Pos,
		})
		if _, err := p.expect(TokSemi); err != nil {
			return err
		}
	}
	p.advance() // }
	alg.Link = decl
	_, err := p.expect(TokSemi)
	return err
}

// parseParenExpr parses a mandatory parenthesised expression. The volume
// factors of node and link clauses must be parenthesised — bench*(expr)
// and length*(expr) — because a coordinate target list ([I]->[J]) follows
// immediately and would otherwise be consumed as array subscripts.
func (p *parser) parseParenExpr() (Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return e, nil
}

// parseCoordList parses: [ expr, expr, ... ]
func (p *parser) parseCoordList() ([]Expr, error) {
	if _, err := p.expect(TokLBracket); err != nil {
		return nil, err
	}
	var out []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return out, nil
}

// parseParent parses: parent[0] ; or parent[0,0];
func (p *parser) parseParent(alg *Algorithm) error {
	p.advance() // parent
	coords, err := p.parseCoordList()
	if err != nil {
		return err
	}
	alg.Parent = coords
	_, err = p.expect(TokSemi)
	return err
}

// parseScheme parses: scheme { stmts } ;
func (p *parser) parseScheme(alg *Algorithm) error {
	p.advance() // scheme
	blk, err := p.parseBlock()
	if err != nil {
		return err
	}
	alg.Scheme = blk
	p.accept(TokSemi)
	return nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	start, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: start.Pos}
	for p.peek().Kind != TokRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.advance() // }
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokPar, TokFor:
		return p.parseLoop()
	case TokIf:
		return p.parseIf()
	default:
		if p.isTypeStart() {
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			return d, nil
		}
		s, err := p.parseSimpleOrAction()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseDecl parses a declaration without the trailing semicolon:
// int a = expr, b;
func (p *parser) parseDecl() (*DeclStmt, error) {
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Type: typ, Pos: p.peek().Pos}
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, name.Text)
		var init Expr
		if p.accept(TokAssign) {
			init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		d.Inits = append(d.Inits, init)
		if !p.accept(TokComma) {
			break
		}
	}
	return d, nil
}

func (p *parser) parseLoop() (Stmt, error) {
	t := p.advance() // par or for
	loop := &LoopStmt{Par: t.Kind == TokPar, Pos: t.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	// Init clause.
	if p.peek().Kind != TokSemi {
		var init Stmt
		var err error
		if p.isTypeStart() {
			init, err = p.parseDecl()
		} else {
			init, err = p.parseSimpleOrAction()
		}
		if err != nil {
			return nil, err
		}
		loop.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	// Condition.
	if p.peek().Kind != TokSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		loop.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	// Post clause.
	if p.peek().Kind != TokRParen {
		post, err := p.parseSimpleOrAction()
		if err != nil {
			return nil, err
		}
		loop.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	loop.Body = body
	return loop, nil
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.advance() // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	stmt := &IfStmt{Cond: cond, Then: then, Pos: t.Pos}
	if p.accept(TokElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmt.Else = els
	}
	return stmt, nil
}

// parseSimpleOrAction parses an expression statement, an assignment, or a
// percentage action (expr %% [coords] [-> [coords]]), without the trailing
// semicolon.
func (p *parser) parseSimpleOrAction() (Stmt, error) {
	pos := p.peek().Pos
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.peek().Kind {
	case TokPercent2:
		p.advance()
		a, err := p.parseCoordList()
		if err != nil {
			return nil, err
		}
		act := &ActionStmt{Percent: e, A: a, Pos: pos}
		if p.accept(TokArrow) {
			b, err := p.parseCoordList()
			if err != nil {
				return nil, err
			}
			act.B = b
		}
		return act, nil
	case TokAssign, TokPlusEq, TokMinusEq:
		op := p.advance().Kind
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: &AssignExpr{Op: op, LHS: e, RHS: rhs, Pos: pos}, Pos: pos}, nil
	default:
		return &ExprStmt{X: e, Pos: pos}, nil
	}
}

// Expression parsing with precedence climbing.

var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokEq:     3, TokNe: 3,
	TokLt: 4, TokGt: 4, TokLe: 4, TokGe: 4,
	TokPlus: 5, TokMinus: 5,
	TokStar: 6, TokSlash: 6, TokPercent: 6,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		prec, ok := binPrec[op.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, Pos: op.Pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokMinus, TokNot, TokAmp:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Kind, X: x, Pos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Kind {
		case TokLBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Idx: idx, Pos: t.Pos}
		case TokDot:
			p.advance()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{X: x, Name: name.Text, Pos: t.Pos}
		case TokInc, TokDec:
			p.advance()
			x = &IncDecExpr{Op: t.Kind, X: x, Pos: t.Pos}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{Value: v, Pos: t.Pos}, nil
	case TokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{Value: v, Pos: t.Pos}, nil
	case TokSizeof:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &SizeofExpr{Type: typ, Pos: t.Pos}, nil
	case TokIdent:
		p.advance()
		if p.peek().Kind == TokLParen {
			p.advance()
			call := &CallExpr{Name: t.Text, Pos: t.Pos}
			if p.peek().Kind != TokRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s %q", t.Kind, t.Text)
}
