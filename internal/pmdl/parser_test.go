package pmdl

import (
	"strings"
	"testing"
)

// wrap builds a minimal algorithm around a fragment placed in the scheme.
func wrapScheme(stmts string) string {
	return `algorithm T(int p) { coord I=p; node {I>=0: bench*(1);}; parent[0]; scheme {` + stmts + `} }`
}

func TestParseMinimalAlgorithm(t *testing.T) {
	f, err := Parse(`algorithm A(int p) { coord I=p; scheme { } }`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Algorithm.Name != "A" || len(f.Algorithm.Coords) != 1 {
		t.Fatalf("parsed %+v", f.Algorithm)
	}
}

func TestParseSectionOrderIrrelevant(t *testing.T) {
	// link before node, parent last.
	src := `algorithm A(int p) {
	  coord I=p;
	  link (L=p) { I!=L : length*(8) [L]->[I]; };
	  scheme { int i; par(i=0;i<p;i++) 100%%[i]; };
	  node {I>=0: bench*(1);};
	  parent[0];
	}`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing algorithm":   `coord I=p;`,
		"missing coord":       `algorithm A(int p) { scheme { } }`,
		"missing scheme":      `algorithm A(int p) { coord I=p; }`,
		"duplicate coord":     `algorithm A(int p) { coord I=p; coord J=p; scheme {} }`,
		"duplicate node":      `algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; node {I>=0: bench*(1);}; scheme {} }`,
		"duplicate scheme":    `algorithm A(int p) { coord I=p; scheme {} scheme {} }`,
		"bad section":         `algorithm A(int p) { coord I=p; frobnicate; scheme {} }`,
		"unclosed paren":      `algorithm A(int p { coord I=p; scheme {} }`,
		"unclosed brace":      `algorithm A(int p) { coord I=p; scheme {`,
		"bad param type":      `algorithm A(quux p) { coord I=p; scheme {} }`,
		"node without bench":  `algorithm A(int p) { coord I=p; node {I>=0: 1;}; scheme {} }`,
		"link without length": `algorithm A(int p) { coord I=p; link { I>=0 : 8 [0]->[1]; }; scheme {} }`,
		"link without arrow":  `algorithm A(int p) { coord I=p; link { I>=0 : length*(8) [0]; }; scheme {} }`,
		"trailing garbage":    `algorithm A(int p) { coord I=p; scheme {} } extra`,
		"stmt without semi":   wrapScheme(`int i i`),
		"if without paren":    wrapScheme(`if 1 100%%[0];`),
		"action bad target":   wrapScheme(`100%%0;`),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Fatalf("accepted: %s", src)
			}
		})
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	_, err := Parse("algorithm A(int p) {\n  coord I=p;\n  bogus;\n}")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

// Statements that parse syntactically but must be rejected by some later
// stage: the semantic checker (Check, run by ParseModel) catches static
// violations, the interpreter catches dynamic ones.
func TestSchemeEvalErrors(t *testing.T) {
	cases := map[string]struct {
		src    string
		static bool // caught by Check
	}{
		"assign to literal":  {wrapScheme(`5 = 3;`), true},
		"endless for":        {wrapScheme(`for(;;) 100%%[0];`), true},
		"undefined name":     {wrapScheme(`zork = 1;`), true},
		"redeclaration":      {wrapScheme(`int i; int i;`), true},
		"unknown call":       {wrapScheme(`Frobnicate(1);`), false},
		"coord out of range": {wrapScheme(`100%%[99];`), false},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			m, err := ParseModel(tc.src)
			if tc.static {
				if err == nil {
					t.Fatalf("semantic checker accepted: %s", tc.src)
				}
				return
			}
			if err != nil {
				t.Fatalf("static stage rejected dynamic-only case: %v", err)
			}
			inst, err := m.Instantiate(2)
			if err != nil {
				return // rejected at instantiation: also fine
			}
			if _, err := inst.BuildDAG(); err == nil {
				t.Fatalf("BuildDAG accepted: %s", tc.src)
			}
		})
	}
}

func TestParsePrecedence(t *testing.T) {
	// 2+3*4 == 14, (2+3)*4 == 20, comparisons bind looser than +.
	src := `algorithm A(int p) { coord I=p;
	  node {I>=0: bench*(2+3*4);};
	  parent[0];
	  scheme { int i; par(i=0; i < 1+1; i++) 100%%[0]; };
	}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{File: f, hosts: map[string]HostFunc{}}
	inst, err := m.Instantiate(1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.CompVolume[0] != 14 {
		t.Fatalf("2+3*4 evaluated to %v", inst.CompVolume[0])
	}
}

func TestParseLogicalOperators(t *testing.T) {
	src := `algorithm A(int p) { coord I=p;
	  node {I>=0 && !(I<0) || 0: bench*(1);};
	  parent[0]; scheme { };
	}`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseElseBranch(t *testing.T) {
	src := wrapScheme(`int i; if (p > 1) 100%%[0]; else 50%%[0];`)
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	blk := f.Algorithm.Scheme
	ifs, ok := blk.Stmts[1].(*IfStmt)
	if !ok || ifs.Else == nil {
		t.Fatalf("else branch not parsed: %+v", blk.Stmts)
	}
}

func TestParseNegativeAndFloatLiterals(t *testing.T) {
	src := `algorithm A(int p) { coord I=p;
	  node {I>=0: bench*(100.5 - -2);};
	  parent[0]; scheme { };
	}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{File: f, hosts: map[string]HostFunc{}}
	inst, err := m.Instantiate(1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.CompVolume[0] != 102.5 {
		t.Fatalf("volume = %v, want 102.5", inst.CompVolume[0])
	}
}

func TestTypedefStructParses(t *testing.T) {
	src := `typedef struct {int A; int B, C;} Point;
	algorithm A(int p) { coord I=p; parent[0];
	  scheme { Point q; q.A = 3; q.B = q.A + 1; };
	}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Typedefs) != 1 || len(f.Typedefs[0].Fields) != 3 {
		t.Fatalf("typedef parsed wrong: %+v", f.Typedefs)
	}
}

func TestTokKindStrings(t *testing.T) {
	if TokArrow.String() != "'->'" || TokEOF.String() != "end of input" {
		t.Fatal("token names broken")
	}
	if got := TokKind(9999).String(); !strings.Contains(got, "9999") {
		t.Fatalf("unknown token name %q", got)
	}
}
