package pmdl

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a parsed model file back to canonical source text. The
// output parses to an equivalent AST (Format(Parse(Format(f))) is a fixed
// point), which the tests verify; pmc uses it to normalise model files.
func Format(f *File) string {
	var b strings.Builder
	p := &printer{b: &b}
	for _, td := range f.Typedefs {
		p.printf("typedef struct {")
		for i, fd := range td.Fields {
			if i > 0 {
				p.printf(" ")
			}
			p.printf("int %s;", fd)
		}
		p.printf("} %s;\n\n", td.Name)
	}
	alg := f.Algorithm
	p.printf("algorithm %s(", alg.Name)
	for i, prm := range alg.Params {
		if i > 0 {
			p.printf(", ")
		}
		p.printf("%s %s", prm.Type, prm.Name)
		for _, d := range prm.Dims {
			p.printf("[%s]", exprString(d))
		}
	}
	p.printf(") {\n")
	p.indent++

	p.line("coord " + joinCoordVars(alg.Coords) + ";")
	for _, cl := range alg.Nodes {
		p.line(fmt.Sprintf("node {%s: bench*(%s);};", exprString(cl.Guard), exprString(cl.Volume)))
	}
	if alg.Link != nil {
		hdr := "link"
		if len(alg.Link.Vars) > 0 {
			hdr += " (" + joinCoordVars(alg.Link.Vars) + ")"
		}
		p.line(hdr + " {")
		p.indent++
		for _, cl := range alg.Link.Clauses {
			p.line(fmt.Sprintf("%s: length*(%s) %s->%s;",
				exprString(cl.Guard), exprString(cl.Volume),
				coordList(cl.Src), coordList(cl.Dst)))
		}
		p.indent--
		p.line("};")
	}
	if alg.Parent != nil {
		p.line("parent" + coordList(alg.Parent) + ";")
	}
	p.line("scheme {")
	p.indent++
	for _, st := range alg.Scheme.Stmts {
		p.stmt(st)
	}
	p.indent--
	p.line("};")

	p.indent--
	p.printf("}\n")
	return b.String()
}

type printer struct {
	b      *strings.Builder
	indent int
}

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(p.b, format, args...)
}

func (p *printer) line(s string) {
	p.printf("%s%s\n", strings.Repeat("  ", p.indent), s)
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, st := range x.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *DeclStmt:
		parts := make([]string, len(x.Names))
		for i, n := range x.Names {
			if x.Inits[i] != nil {
				parts[i] = n + " = " + exprString(x.Inits[i])
			} else {
				parts[i] = n
			}
		}
		p.line(x.Type.String() + " " + strings.Join(parts, ", ") + ";")
	case *LoopStmt:
		kw := "for"
		if x.Par {
			kw = "par"
		}
		init, post := "", ""
		if x.Init != nil {
			init = simpleStmtString(x.Init)
		}
		cond := ""
		if x.Cond != nil {
			cond = exprString(x.Cond)
		}
		if x.Post != nil {
			post = simpleStmtString(x.Post)
		}
		p.line(fmt.Sprintf("%s (%s; %s; %s)", kw, init, cond, post))
		p.indent++
		p.stmt(x.Body)
		p.indent--
	case *IfStmt:
		p.line("if (" + exprString(x.Cond) + ")")
		p.indent++
		p.stmt(x.Then)
		p.indent--
		if x.Else != nil {
			p.line("else")
			p.indent++
			p.stmt(x.Else)
			p.indent--
		}
	case *ExprStmt:
		p.line(exprString(x.X) + ";")
	case *ActionStmt:
		out := "(" + exprString(x.Percent) + ")%%" + coordList(x.A)
		if x.B != nil {
			out += "->" + coordList(x.B)
		}
		p.line(out + ";")
	}
}

// simpleStmtString renders a loop init/post clause without newline or
// semicolon.
func simpleStmtString(s Stmt) string {
	switch x := s.(type) {
	case *ExprStmt:
		return exprString(x.X)
	case *DeclStmt:
		parts := make([]string, len(x.Names))
		for i, n := range x.Names {
			if x.Inits[i] != nil {
				parts[i] = n + " = " + exprString(x.Inits[i])
			} else {
				parts[i] = n
			}
		}
		return x.Type.String() + " " + strings.Join(parts, ", ")
	default:
		return fmt.Sprintf("/* %T */", s)
	}
}

func joinCoordVars(cs []CoordVar) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.Name + "=" + exprString(c.Size)
	}
	return strings.Join(parts, ", ")
}

func coordList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = exprString(e)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

var opText = map[TokKind]string{
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokGt: ">", TokLe: "<=", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokNot: "!", TokAmp: "&",
	TokAssign: "=", TokPlusEq: "+=", TokMinusEq: "-=", TokInc: "++", TokDec: "--",
}

// exprString renders an expression, parenthesising every binary operation
// so re-parsing preserves the tree exactly.
func exprString(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return strconv.FormatInt(x.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep it lexing as a float literal
		}
		return s
	case *Ident:
		return x.Name
	case *MemberExpr:
		return exprString(x.X) + "." + x.Name
	case *IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Idx) + "]"
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprString(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *UnaryExpr:
		return opText[x.Op] + "(" + exprString(x.X) + ")"
	case *BinaryExpr:
		return "(" + exprString(x.X) + " " + opText[x.Op] + " " + exprString(x.Y) + ")"
	case *AssignExpr:
		return exprString(x.LHS) + " " + opText[x.Op] + " " + exprString(x.RHS)
	case *IncDecExpr:
		return exprString(x.X) + opText[x.Op]
	case *SizeofExpr:
		return "sizeof(" + x.Type.String() + ")"
	default:
		return fmt.Sprintf("/* %T */", e)
	}
}
