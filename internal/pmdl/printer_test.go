package pmdl

import (
	"testing"
)

// TestFormatRoundTripPaperModels: formatting a published model and parsing
// the result must reach a fixed point, and the reformatted model must
// instantiate to identical volumes.
func TestFormatRoundTripPaperModels(t *testing.T) {
	for name, src := range map[string]string{"em3d": em3dSrc, "axb": parallelAxBSrc} {
		t.Run(name, func(t *testing.T) {
			f1, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			out1 := Format(f1)
			f2, err := Parse(out1)
			if err != nil {
				t.Fatalf("formatted source does not parse: %v\n%s", err, out1)
			}
			out2 := Format(f2)
			if out1 != out2 {
				t.Fatalf("Format not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
			}
			if err := Check(f2); err != nil {
				t.Fatalf("formatted source fails semantic check: %v", err)
			}
		})
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	m1, err := ParseModel(em3dSrc)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseModel(Format(m1.File))
	if err != nil {
		t.Fatal(err)
	}
	d := []int{200, 300, 500}
	dep := [][]int{{0, 10, 5}, {10, 0, 20}, {5, 20, 0}}
	i1, err := m1.Instantiate(3, 100, d, dep)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := m2.Instantiate(3, 100, d, dep)
	if err != nil {
		t.Fatal(err)
	}
	for p := range i1.CompVolume {
		if i1.CompVolume[p] != i2.CompVolume[p] {
			t.Fatalf("volumes differ at %d: %v vs %v", p, i1.CompVolume[p], i2.CompVolume[p])
		}
		for q := range i1.CommVolume[p] {
			if i1.CommVolume[p][q] != i2.CommVolume[p][q] {
				t.Fatalf("comm volumes differ at (%d,%d)", p, q)
			}
		}
	}
	// The scheme DAGs are structurally identical.
	d1, err := i1.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := i2.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	if d1.Size() != d2.Size() {
		t.Fatalf("DAG sizes differ: %d vs %d", d1.Size(), d2.Size())
	}
	for i := range d1.Tasks {
		a, b := d1.Tasks[i], d2.Tasks[i]
		if a.Kind != b.Kind || a.Proc != b.Proc || a.Src != b.Src || a.Dst != b.Dst ||
			a.Units != b.Units || a.Bytes != b.Bytes {
			t.Fatalf("task %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestFormatExpressionForms(t *testing.T) {
	// A model exercising every expression form the printer handles.
	src := `typedef struct {int I; int J;} P;
	algorithm X(int p, int d[p], double f) {
	  coord I=p;
	  node {I>=0 && !(I<0): bench*(d[I]*2 - -3 + sizeof(double) % 5);};
	  parent[0];
	  scheme {
	    int i;
	    P q;
	    q.I = 0;
	    i = 1;
	    i += 2;
	    i -= 1;
	    i++;
	    i--;
	    GetProcessor(0, 0, 1, d, d, &q);
	    for (i = 0; i < p; i++)
	      if (i % 2 == 0) (100.0/p)%%[i]; else (50)%%[i];
	  };
	}`
	f1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f1)
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, out)
	}
	if Format(f2) != out {
		t.Fatalf("not a fixed point:\n%s\nvs\n%s", out, Format(f2))
	}
}

func TestFormatFloatLiteralStaysFloat(t *testing.T) {
	src := `algorithm X(int p) { coord I=p; node {I>=0: bench*(100.0);}; scheme { }; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	f2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f2.Algorithm.Nodes[0].Volume.(*FloatLit); !ok {
		t.Fatalf("float literal degraded to %T in:\n%s", f2.Algorithm.Nodes[0].Volume, out)
	}
}
