package pmdl

import "fmt"

// Static semantic analysis of a model file: name resolution, arity checks
// and structural rules, reported before any instantiation. The paper's
// toolchain compiles model descriptions ahead of time (Figure 1); Check is
// the diagnostic half of that compiler. ParseModel runs it automatically.
//
// Checked rules:
//
//   - parameter, coordinate and link-variable names are unique;
//   - every identifier in node/link/parent/scheme resolves to a parameter,
//     coordinate, link variable or (in schemes) a local declaration in
//     scope;
//   - struct types exist and member accesses name real fields;
//   - coordinate target lists ([...] in actions, link clauses and parent)
//     have exactly one expression per coordinate;
//   - array subscripts do not exceed the declared dimensionality;
//   - assignment targets are lvalues.
//
// Host-function calls cannot be resolved statically (they are registered
// at run time), so call names are not checked here; unknown functions
// surface when the scheme is interpreted.

// Check performs the semantic analysis and returns the first error.
func Check(f *File) error {
	c := &checker{
		structs: make(map[string]*StructDef),
		coords:  len(f.Algorithm.Coords),
	}
	for _, td := range f.Typedefs {
		if _, dup := c.structs[td.Name]; dup {
			return errf(td.Pos, "duplicate struct typedef %q", td.Name)
		}
		fields := map[string]bool{}
		for _, fd := range td.Fields {
			if fields[fd] {
				return errf(td.Pos, "duplicate field %q in struct %s", fd, td.Name)
			}
			fields[fd] = true
		}
		c.structs[td.Name] = td
	}
	alg := f.Algorithm

	// Parameters.
	global := newScope(nil)
	for _, prm := range alg.Params {
		if prm.Type.Kind == TypeStruct {
			if _, ok := c.structs[prm.Type.Struct]; !ok {
				return errf(prm.Pos, "parameter %s has unknown type %q", prm.Name, prm.Type.Struct)
			}
		}
		if err := global.declare(prm.Pos, prm.Name, symbol{dims: len(prm.Dims), typ: prm.Type}); err != nil {
			return err
		}
		// Dimension expressions may reference earlier parameters.
		for _, dim := range prm.Dims {
			if err := c.expr(dim, global); err != nil {
				return err
			}
		}
	}

	// Coordinates: sizes reference parameters; names join the scope.
	for _, cv := range alg.Coords {
		if err := c.expr(cv.Size, global); err != nil {
			return err
		}
		if err := global.declare(cv.Pos, cv.Name, symbol{typ: TypeRef{Kind: TypeInt}}); err != nil {
			return err
		}
	}

	// Node clauses.
	for _, cl := range alg.Nodes {
		if err := c.expr(cl.Guard, global); err != nil {
			return err
		}
		if err := c.expr(cl.Volume, global); err != nil {
			return err
		}
	}

	// Link clauses, with the link variables in scope.
	if alg.Link != nil {
		linkScope := newScope(global)
		for _, lv := range alg.Link.Vars {
			if err := c.expr(lv.Size, global); err != nil {
				return err
			}
			if err := linkScope.declare(lv.Pos, lv.Name, symbol{typ: TypeRef{Kind: TypeInt}}); err != nil {
				return err
			}
		}
		for _, cl := range alg.Link.Clauses {
			if err := c.expr(cl.Guard, linkScope); err != nil {
				return err
			}
			if err := c.expr(cl.Volume, linkScope); err != nil {
				return err
			}
			for _, side := range [][]Expr{cl.Src, cl.Dst} {
				if len(side) != c.coords {
					return errf(cl.Pos, "link target names %d coordinates, algorithm has %d", len(side), c.coords)
				}
				for _, e := range side {
					if err := c.expr(e, linkScope); err != nil {
						return err
					}
				}
			}
		}
	}

	// Parent.
	if alg.Parent != nil {
		if len(alg.Parent) != c.coords {
			return errf(alg.Pos, "parent names %d coordinates, algorithm has %d", len(alg.Parent), c.coords)
		}
		for _, e := range alg.Parent {
			if err := c.expr(e, global); err != nil {
				return err
			}
		}
	}

	// Scheme.
	return c.stmt(alg.Scheme, newScope(global))
}

// symbol is a declared name.
type symbol struct {
	dims int // >0 for arrays
	typ  TypeRef
}

// scope is a lexical scope for the checker.
type scope struct {
	names  map[string]symbol
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{names: make(map[string]symbol), parent: parent}
}

func (s *scope) declare(pos Pos, name string, sym symbol) error {
	if _, dup := s.names[name]; dup {
		return errf(pos, "redeclaration of %q", name)
	}
	s.names[name] = sym
	return nil
}

func (s *scope) lookup(name string) (symbol, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym, true
		}
	}
	return symbol{}, false
}

type checker struct {
	structs map[string]*StructDef
	coords  int
}

func (c *checker) stmt(s Stmt, sc *scope) error {
	switch x := s.(type) {
	case *BlockStmt:
		inner := newScope(sc)
		for _, st := range x.Stmts {
			if err := c.stmt(st, inner); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		if x.Type.Kind == TypeStruct {
			if _, ok := c.structs[x.Type.Struct]; !ok {
				return errf(x.Pos, "unknown struct type %q", x.Type.Struct)
			}
		}
		for i, name := range x.Names {
			if x.Inits[i] != nil {
				if err := c.expr(x.Inits[i], sc); err != nil {
					return err
				}
			}
			if err := sc.declare(x.Pos, name, symbol{typ: x.Type}); err != nil {
				return err
			}
		}
		return nil
	case *LoopStmt:
		inner := newScope(sc)
		if x.Init != nil {
			if err := c.stmt(x.Init, inner); err != nil {
				return err
			}
		}
		if x.Cond != nil {
			if err := c.expr(x.Cond, inner); err != nil {
				return err
			}
		} else if !x.Par {
			return errf(x.Pos, "for loop without a condition never terminates")
		}
		if x.Post != nil {
			if err := c.stmt(x.Post, inner); err != nil {
				return err
			}
		}
		return c.stmt(x.Body, inner)
	case *IfStmt:
		if err := c.expr(x.Cond, sc); err != nil {
			return err
		}
		if err := c.stmt(x.Then, sc); err != nil {
			return err
		}
		if x.Else != nil {
			return c.stmt(x.Else, sc)
		}
		return nil
	case *ExprStmt:
		return c.expr(x.X, sc)
	case *ActionStmt:
		if err := c.expr(x.Percent, sc); err != nil {
			return err
		}
		for _, side := range [][]Expr{x.A, x.B} {
			if side == nil {
				continue
			}
			if len(side) != c.coords {
				return errf(x.Pos, "action target names %d coordinates, algorithm has %d", len(side), c.coords)
			}
			for _, e := range side {
				if err := c.expr(e, sc); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return fmt.Errorf("pmdl: unknown statement %T", s)
}

func (c *checker) expr(e Expr, sc *scope) error {
	switch x := e.(type) {
	case *IntLit, *FloatLit, *SizeofExpr:
		return nil
	case *Ident:
		if _, ok := sc.lookup(x.Name); !ok {
			return errf(x.Pos, "undefined name %q", x.Name)
		}
		return nil
	case *MemberExpr:
		// The base must be a struct-typed name; resolve its type when
		// statically known.
		if id, ok := x.X.(*Ident); ok {
			sym, found := sc.lookup(id.Name)
			if !found {
				return errf(id.Pos, "undefined name %q", id.Name)
			}
			if sym.typ.Kind == TypeStruct {
				def := c.structs[sym.typ.Struct]
				if def != nil && !containsString(def.Fields, x.Name) {
					return errf(x.Pos, "struct %s has no field %q", sym.typ.Struct, x.Name)
				}
				return nil
			}
			return errf(x.Pos, "%q is not a struct", id.Name)
		}
		return c.expr(x.X, sc)
	case *IndexExpr:
		// Count subscript depth against declared dimensionality for
		// plain identifiers.
		depth := 0
		base := e
		for {
			idx, ok := base.(*IndexExpr)
			if !ok {
				break
			}
			if err := c.expr(idx.Idx, sc); err != nil {
				return err
			}
			depth++
			base = idx.X
		}
		if id, ok := base.(*Ident); ok {
			sym, found := sc.lookup(id.Name)
			if !found {
				return errf(id.Pos, "undefined name %q", id.Name)
			}
			if sym.dims == 0 {
				return errf(x.Pos, "%q is not an array", id.Name)
			}
			if depth > sym.dims {
				return errf(x.Pos, "%q has %d dimensions, %d subscripts given", id.Name, sym.dims, depth)
			}
			return nil
		}
		return c.expr(base, sc)
	case *CallExpr:
		// Host functions are resolved at run time; only check args.
		for _, a := range x.Args {
			if err := c.expr(a, sc); err != nil {
				return err
			}
		}
		return nil
	case *UnaryExpr:
		if x.Op == TokAmp {
			if !isLvalue(x.X) {
				return errf(x.Pos, "& requires an assignable operand")
			}
		}
		return c.expr(x.X, sc)
	case *BinaryExpr:
		if err := c.expr(x.X, sc); err != nil {
			return err
		}
		return c.expr(x.Y, sc)
	case *AssignExpr:
		if !isLvalue(x.LHS) {
			return errf(x.Pos, "left side of assignment is not assignable")
		}
		if err := c.expr(x.LHS, sc); err != nil {
			return err
		}
		return c.expr(x.RHS, sc)
	case *IncDecExpr:
		if !isLvalue(x.X) {
			return errf(x.Pos, "operand of ++/-- is not assignable")
		}
		return c.expr(x.X, sc)
	}
	return fmt.Errorf("pmdl: unknown expression %T", e)
}

func isLvalue(e Expr) bool {
	switch e.(type) {
	case *Ident, *MemberExpr, *IndexExpr:
		return true
	}
	return false
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
