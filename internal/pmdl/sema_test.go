package pmdl

import (
	"strings"
	"testing"
)

// checkSrc parses (without the semantic pass) and then runs Check,
// returning its error.
func checkSrc(t *testing.T, src string) error {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func TestCheckAcceptsPaperModels(t *testing.T) {
	for _, src := range []string{em3dSrc, parallelAxBSrc} {
		f, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(f); err != nil {
			t.Fatalf("semantic checker rejects a published model: %v", err)
		}
	}
}

func TestCheckRejections(t *testing.T) {
	cases := map[string]struct {
		src  string
		want string // substring of the diagnostic
	}{
		"undefined in node": {
			`algorithm A(int p) { coord I=p; node {I>=0: bench*(zork);}; scheme { } }`,
			`undefined name "zork"`,
		},
		"undefined in guard": {
			`algorithm A(int p) { coord I=p; node {Q>=0: bench*(1);}; scheme { } }`,
			`undefined name "Q"`,
		},
		"undefined in link": {
			`algorithm A(int p) { coord I=p; link (L=p) { I!=L : length*(missing) [L]->[I]; }; scheme { } }`,
			`undefined name "missing"`,
		},
		"link target arity": {
			`algorithm A(int a, int b) { coord I=a, J=b; link (L=a) { I!=L : length*(8) [L]->[I]; }; scheme { } }`,
			"link target names 1 coordinates, algorithm has 2",
		},
		"parent arity": {
			`algorithm A(int a, int b) { coord I=a, J=b; parent[0]; scheme { } }`,
			"parent names 1 coordinates",
		},
		"action arity": {
			`algorithm A(int a, int b) { coord I=a, J=b; scheme { 100%%[0]; } }`,
			"action target names 1 coordinates",
		},
		"duplicate params": {
			`algorithm A(int p, int p) { coord I=p; scheme { } }`,
			`redeclaration of "p"`,
		},
		"coord shadows param": {
			`algorithm A(int p) { coord p=p; scheme { } }`,
			`redeclaration of "p"`,
		},
		"unknown struct param": {
			`algorithm A(Ghost g, int p) { coord I=p; scheme { } }`,
			"", // any error acceptable: type is not a known name
		},
		"unknown struct local": {
			`typedef struct {int I;} P; algorithm A(int p) { coord I=p; scheme { Q v; } }`,
			"",
		},
		"bad member": {
			`typedef struct {int I;} P; algorithm A(int p) { coord I=p; scheme { P v; v.Z = 1; } }`,
			`no field "Z"`,
		},
		"member of non-struct": {
			`algorithm A(int p) { coord I=p; scheme { int v; v.I = 1; } }`,
			"is not a struct",
		},
		"index non-array": {
			`algorithm A(int p) { coord I=p; node {I>=0: bench*(p[0]);}; scheme { } }`,
			"is not an array",
		},
		"too many subscripts": {
			`algorithm A(int p, int d[p]) { coord I=p; node {I>=0: bench*(d[0][0]);}; scheme { } }`,
			"1 dimensions, 2 subscripts",
		},
		"dup struct fields": {
			`typedef struct {int I; int I;} P; algorithm A(int p) { coord I=p; scheme { } }`,
			`duplicate field "I"`,
		},
		"dup typedef": {
			`typedef struct {int I;} P; typedef struct {int J;} P; algorithm A(int p) { coord I=p; scheme { } }`,
			"duplicate struct typedef",
		},
		"amp of literal": {
			`algorithm A(int p) { coord I=p; scheme { Foo(&5); } }`,
			"& requires an assignable operand",
		},
		"incdec literal": {
			`algorithm A(int p) { coord I=p; scheme { 5++; } }`,
			"not assignable",
		},
		"undefined in scheme cond": {
			`algorithm A(int p) { coord I=p; scheme { int i; par (i = 0; i < zz; i++) 100%%[i]; } }`,
			`undefined name "zz"`,
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			// Some sources fail already at parse (unknown type names
			// change declaration parsing); treat that as a pass too.
			f, err := Parse(tc.src)
			if err != nil {
				return
			}
			err = Check(f)
			if err == nil {
				t.Fatalf("accepted: %s", tc.src)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("diagnostic %q lacks %q", err.Error(), tc.want)
			}
		})
	}
}

func TestCheckScopesBlocks(t *testing.T) {
	// A name declared in an inner block is invisible outside it.
	src := `algorithm A(int p) { coord I=p; scheme {
	  { int inner; inner = 1; }
	  inner = 2;
	} }`
	if err := checkSrc(t, src); err == nil {
		t.Fatal("inner-scope name visible outside its block")
	}
	// Same name in sibling blocks is fine.
	ok := `algorithm A(int p) { coord I=p; scheme {
	  { int x; x = 1; }
	  { int x; x = 2; }
	} }`
	if err := checkSrc(t, ok); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLoopScope(t *testing.T) {
	// A loop-init declaration is visible in the loop body.
	src := `algorithm A(int p) { coord I=p; scheme {
	  par (int i = 0; i < p; i++) 100%%[i];
	} }`
	if err := checkSrc(t, src); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDimensionExprs(t *testing.T) {
	// Dimensions may reference earlier parameters but not later ones.
	bad := `algorithm A(int d[p], int p) { coord I=p; scheme { } }`
	if err := checkSrc(t, bad); err == nil {
		t.Fatal("forward parameter reference in dimension accepted")
	}
}
