// Package pmdl implements HMPI's performance-model definition language —
// the small, dedicated language (derived from the network types of mpC) in
// which an application programmer describes the performance model of a
// parallel algorithm: the number of abstract processors (coord), the
// volume of computation each performs (node), the volume of data
// transferred between each pair (link), the parent process (parent), and
// how the processors interact during execution (scheme).
//
// The package contains the compiler front end (lexer, parser, AST) and the
// model evaluator: Instantiate binds actual parameters and evaluates the
// node and link sections into per-processor computation volumes and
// per-pair communication volumes; BuildDAG interprets the scheme section
// into a task graph that the sched package replays against a candidate
// process arrangement to predict execution time (HMPI_Timeof).
package pmdl

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat

	// Keywords.
	TokAlgorithm
	TokCoord
	TokNode
	TokLink
	TokParent
	TokScheme
	TokPar
	TokFor
	TokIf
	TokElse
	TokIntType
	TokDoubleType
	TokTypedef
	TokStruct
	TokBench
	TokLength
	TokSizeof

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokColon    // :
	TokDot      // .
	TokArrow    // ->
	TokPercent2 // %%
	TokAssign   // =
	TokPlusEq   // +=
	TokMinusEq  // -=
	TokInc      // ++
	TokDec      // --
	TokEq       // ==
	TokNe       // !=
	TokLe       // <=
	TokGe       // >=
	TokLt       // <
	TokGt       // >
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !
	TokAmp      // &
)

var keywords = map[string]TokKind{
	"algorithm": TokAlgorithm,
	"coord":     TokCoord,
	"node":      TokNode,
	"link":      TokLink,
	"parent":    TokParent,
	"scheme":    TokScheme,
	"par":       TokPar,
	"for":       TokFor,
	"if":        TokIf,
	"else":      TokElse,
	"int":       TokIntType,
	"double":    TokDoubleType,
	"typedef":   TokTypedef,
	"struct":    TokStruct,
	"bench":     TokBench,
	"length":    TokLength,
	"sizeof":    TokSizeof,
}

var tokNames = map[TokKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokInt: "integer literal",
	TokFloat: "float literal", TokAlgorithm: "'algorithm'", TokCoord: "'coord'",
	TokNode: "'node'", TokLink: "'link'", TokParent: "'parent'",
	TokScheme: "'scheme'", TokPar: "'par'", TokFor: "'for'", TokIf: "'if'",
	TokElse: "'else'", TokIntType: "'int'", TokDoubleType: "'double'",
	TokTypedef: "'typedef'", TokStruct: "'struct'", TokBench: "'bench'",
	TokLength: "'length'", TokSizeof: "'sizeof'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokSemi: "';'", TokComma: "','",
	TokColon: "':'", TokDot: "'.'", TokArrow: "'->'", TokPercent2: "'%%'",
	TokAssign: "'='", TokPlusEq: "'+='", TokMinusEq: "'-='", TokInc: "'++'",
	TokDec: "'--'", TokEq: "'=='", TokNe: "'!='", TokLe: "'<='", TokGe: "'>='",
	TokLt: "'<'", TokGt: "'>'", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokSlash: "'/'", TokPercent: "'%'", TokAndAnd: "'&&'", TokOrOr: "'||'",
	TokNot: "'!'", TokAmp: "'&'",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Error is a compile-time error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("pmdl: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
