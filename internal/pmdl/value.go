package pmdl

import (
	"fmt"
)

// Runtime value model of the interpreter. Arithmetic follows C semantics:
// int/int division truncates, mixed int/double promotes to double,
// comparisons and logical operators produce int 0/1.

// Value is a runtime value: IntVal, DoubleVal, *StructVal, *ArrayVal or
// RefVal.
type Value interface{ valueKind() string }

// IntVal is an int value.
type IntVal int64

// DoubleVal is a double value.
type DoubleVal float64

// Cell is an assignable storage location.
type Cell struct{ V Value }

// StructVal is a struct instance with assignable int fields.
type StructVal struct {
	Type   string
	Fields map[string]*Cell
	Order  []string
}

// ArrayVal is a (possibly multi-dimensional) array. Elements are stored
// flattened in row-major order; indexing one subscript at a time yields
// sub-array views until the last dimension, which yields element cells.
type ArrayVal struct {
	Dims  []int
	Elems []*Cell // len == product of Dims
}

// RefVal is the address of a cell, produced by unary & and consumed by
// host functions (e.g. GetProcessor's output parameter).
type RefVal struct{ Cell *Cell }

func (IntVal) valueKind() string     { return "int" }
func (DoubleVal) valueKind() string  { return "double" }
func (*StructVal) valueKind() string { return "struct" }
func (*ArrayVal) valueKind() string  { return "array" }
func (RefVal) valueKind() string     { return "ref" }

// newStruct builds a zeroed struct instance from its definition.
func newStruct(def *StructDef) *StructVal {
	s := &StructVal{Type: def.Name, Fields: make(map[string]*Cell, len(def.Fields))}
	for _, f := range def.Fields {
		s.Fields[f] = &Cell{V: IntVal(0)}
		s.Order = append(s.Order, f)
	}
	return s
}

// newArray builds a zeroed int array with the given dimensions.
func newArray(dims []int) *ArrayVal {
	n := 1
	for _, d := range dims {
		n *= d
	}
	a := &ArrayVal{Dims: dims, Elems: make([]*Cell, n)}
	for i := range a.Elems {
		a.Elems[i] = &Cell{V: IntVal(0)}
	}
	return a
}

// index returns the sub-array view (more than one remaining dimension) or
// the element cell (last dimension) at position i of the first dimension.
func (a *ArrayVal) index(pos Pos, i int64) (Value, *Cell, error) {
	if len(a.Dims) == 0 {
		return nil, nil, errf(pos, "indexing a non-array value")
	}
	if i < 0 || int(i) >= a.Dims[0] {
		return nil, nil, errf(pos, "index %d out of range [0,%d)", i, a.Dims[0])
	}
	if len(a.Dims) == 1 {
		return nil, a.Elems[i], nil
	}
	stride := 1
	for _, d := range a.Dims[1:] {
		stride *= d
	}
	return &ArrayVal{
		Dims:  a.Dims[1:],
		Elems: a.Elems[int(i)*stride : (int(i)+1)*stride],
	}, nil, nil
}

// env is a lexical scope chain.
type env struct {
	vars   map[string]*Cell
	parent *env
}

func newEnv(parent *env) *env {
	return &env{vars: make(map[string]*Cell), parent: parent}
}

func (e *env) lookup(name string) (*Cell, bool) {
	for s := e; s != nil; s = s.parent {
		if c, ok := s.vars[name]; ok {
			return c, true
		}
	}
	return nil, false
}

func (e *env) define(pos Pos, name string, v Value) (*Cell, error) {
	if _, exists := e.vars[name]; exists {
		return nil, errf(pos, "redeclaration of %q", name)
	}
	c := &Cell{V: v}
	e.vars[name] = c
	return c, nil
}

// Numeric conversions.

func asInt(pos Pos, v Value) (int64, error) {
	switch x := v.(type) {
	case IntVal:
		return int64(x), nil
	case DoubleVal:
		return int64(x), nil
	default:
		return 0, errf(pos, "expected a numeric value, got %s", v.valueKind())
	}
}

func asDouble(pos Pos, v Value) (float64, error) {
	switch x := v.(type) {
	case IntVal:
		return float64(x), nil
	case DoubleVal:
		return float64(x), nil
	default:
		return 0, errf(pos, "expected a numeric value, got %s", v.valueKind())
	}
}

func isTruthy(pos Pos, v Value) (bool, error) {
	i, err := asInt(pos, v)
	return i != 0, err
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// HostFunc is a function the embedding Go program registers with a model;
// the scheme may call it by name (the matrix-multiplication model calls
// GetProcessor this way). Arguments arrive evaluated; & arguments arrive
// as RefVal so the function can write through them.
type HostFunc func(pos Pos, args []Value) (Value, error)

// numericBinop applies a C-semantics binary operator.
func numericBinop(pos Pos, op TokKind, a, b Value) (Value, error) {
	_, aIsD := a.(DoubleVal)
	_, bIsD := b.(DoubleVal)
	if aIsD || bIsD {
		x, err := asDouble(pos, a)
		if err != nil {
			return nil, err
		}
		y, err := asDouble(pos, b)
		if err != nil {
			return nil, err
		}
		switch op {
		case TokPlus:
			return DoubleVal(x + y), nil
		case TokMinus:
			return DoubleVal(x - y), nil
		case TokStar:
			return DoubleVal(x * y), nil
		case TokSlash:
			if y == 0 {
				return nil, errf(pos, "division by zero")
			}
			return DoubleVal(x / y), nil
		case TokPercent:
			return nil, errf(pos, "%% requires integer operands")
		case TokEq:
			return boolVal(x == y), nil
		case TokNe:
			return boolVal(x != y), nil
		case TokLt:
			return boolVal(x < y), nil
		case TokGt:
			return boolVal(x > y), nil
		case TokLe:
			return boolVal(x <= y), nil
		case TokGe:
			return boolVal(x >= y), nil
		}
		return nil, errf(pos, "invalid binary operator %s", op)
	}
	x, err := asInt(pos, a)
	if err != nil {
		return nil, err
	}
	y, err := asInt(pos, b)
	if err != nil {
		return nil, err
	}
	switch op {
	case TokPlus:
		return IntVal(x + y), nil
	case TokMinus:
		return IntVal(x - y), nil
	case TokStar:
		return IntVal(x * y), nil
	case TokSlash:
		if y == 0 {
			return nil, errf(pos, "division by zero")
		}
		return IntVal(x / y), nil
	case TokPercent:
		if y == 0 {
			return nil, errf(pos, "modulo by zero")
		}
		return IntVal(x % y), nil
	case TokEq:
		return boolVal(x == y), nil
	case TokNe:
		return boolVal(x != y), nil
	case TokLt:
		return boolVal(x < y), nil
	case TokGt:
		return boolVal(x > y), nil
	case TokLe:
		return boolVal(x <= y), nil
	case TokGe:
		return boolVal(x >= y), nil
	}
	return nil, errf(pos, "invalid binary operator %s", op)
}

// FormatValue renders a value for diagnostics and the pmc tool.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case IntVal:
		return fmt.Sprintf("%d", int64(x))
	case DoubleVal:
		return fmt.Sprintf("%g", float64(x))
	case *StructVal:
		s := x.Type + "{"
		for i, f := range x.Order {
			if i > 0 {
				s += ", "
			}
			s += f + ": " + FormatValue(x.Fields[f].V)
		}
		return s + "}"
	case *ArrayVal:
		s := "["
		for i, c := range x.Elems {
			if i > 0 {
				s += " "
			}
			if i >= 16 {
				s += "..."
				break
			}
			s += FormatValue(c.V)
		}
		return s + "]"
	case RefVal:
		return "&" + FormatValue(x.Cell.V)
	default:
		return "?"
	}
}
