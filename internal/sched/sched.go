// Package sched provides the task-graph machinery behind HMPI_Timeof: the
// scheme declaration of a performance model is interpreted into a DAG of
// computation and communication tasks, and a deterministic list scheduler
// replays the DAG against the resources of a candidate process arrangement
// (per-processor serial execution, per-sender interface serialisation,
// switched network) to predict the execution time of the modelled
// algorithm.
package sched

import (
	"fmt"
	"math"
)

// Kind discriminates task types.
type Kind int

// Task kinds.
const (
	// KindCompute is computation on one abstract processor.
	KindCompute Kind = iota
	// KindTransfer is a point-to-point transfer between two abstract
	// processors.
	KindTransfer
	// KindNop is a zero-duration synchronisation node (par fork/join).
	KindNop
)

// Task is one node of the graph.
type Task struct {
	ID   int
	Kind Kind
	// Proc is the computing abstract processor (KindCompute).
	Proc int
	// Src and Dst are the endpoints (KindTransfer).
	Src, Dst int
	// Units is the computation volume in benchmark units (KindCompute).
	Units float64
	// Bytes is the transfer volume (KindTransfer).
	Bytes float64
	// Deps are the IDs of tasks that must finish first.
	Deps []int
}

// DAG is a task graph under construction. Tasks must be appended in a
// topological order (dependencies before dependents); the interpreter's
// program order guarantees this naturally.
type DAG struct {
	Tasks []*Task
}

// add appends a task, validating the dependency ordering invariant.
func (d *DAG) add(t *Task) int {
	t.ID = len(d.Tasks)
	for _, dep := range t.Deps {
		if dep < 0 || dep >= t.ID {
			panic(fmt.Sprintf("sched: task %d depends on %d, not yet defined", t.ID, dep))
		}
	}
	d.Tasks = append(d.Tasks, t)
	return t.ID
}

// AddCompute appends a computation of `units` benchmark units on abstract
// processor proc and returns its ID.
func (d *DAG) AddCompute(proc int, units float64, deps []int) int {
	if units < 0 {
		panic(fmt.Sprintf("sched: negative compute volume %v", units))
	}
	return d.add(&Task{Kind: KindCompute, Proc: proc, Units: units, Deps: dupDeps(deps)})
}

// AddTransfer appends a transfer of bytes from src to dst and returns its
// ID.
func (d *DAG) AddTransfer(src, dst int, bytes float64, deps []int) int {
	if bytes < 0 {
		panic(fmt.Sprintf("sched: negative transfer volume %v", bytes))
	}
	return d.add(&Task{Kind: KindTransfer, Src: src, Dst: dst, Bytes: bytes, Deps: dupDeps(deps)})
}

// AddNop appends a synchronisation node joining deps and returns its ID.
func (d *DAG) AddNop(deps []int) int {
	return d.add(&Task{Kind: KindNop, Deps: dupDeps(deps)})
}

func dupDeps(deps []int) []int { return append([]int(nil), deps...) }

// Size returns the number of tasks.
func (d *DAG) Size() int { return len(d.Tasks) }

// Link is the cost model of one directed channel between two abstract
// processors.
type Link struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes per second
	Overhead  float64 // per-message CPU cost charged to the transfer
}

// Resources supplies the performance of a candidate arrangement of
// abstract processors on physical machines.
type Resources struct {
	// Speed returns the effective speed of the machine executing
	// abstract processor p, in benchmark units per second (already
	// reduced for machine sharing and external load, as estimated by
	// HMPI_Recon).
	Speed func(p int) float64
	// Link returns the channel cost model from abstract processor src to
	// dst.
	Link func(src, dst int) Link
	// SerialiseNIC, when true, makes each abstract processor's outgoing
	// transfers occupy its interface serially (switched-Ethernet
	// behaviour). When false, all transfers from one processor proceed
	// in parallel (an idealised network; kept for the ablation study).
	SerialiseNIC bool
}

// Result is the outcome of scheduling a DAG.
type Result struct {
	Makespan float64
	// Finish[i] is the completion time of task i.
	Finish []float64
	// ProcBusy[p] is the total computation time of abstract processor p.
	ProcBusy []float64
	// BytesOut[p] is the total volume sent by abstract processor p.
	BytesOut []float64
}

// Scratch holds the replay state of one Schedule call so that the hot
// path of group selection — scoring thousands of candidate arrangements
// against the same DAG — can run allocation-free. The zero value is ready
// to use; buffers grow on demand and are reused across calls. A Scratch
// must be owned by a single goroutine (one search worker); distinct
// Scratches never share state, so any number may replay one DAG
// concurrently.
type Scratch struct {
	finish   []float64
	procFree []float64
	nicFree  []float64
	busy     []float64
	bytesOut []float64
}

// reset sizes every buffer and zeroes the active prefix.
func (s *Scratch) reset(tasks, procs int) {
	s.finish = resizeZero(s.finish, tasks)
	s.procFree = resizeZero(s.procFree, procs)
	s.nicFree = resizeZero(s.nicFree, procs)
	s.busy = resizeZero(s.busy, procs)
	s.bytesOut = resizeZero(s.bytesOut, procs)
}

func resizeZero(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// Schedule replays the DAG in insertion order (a topological order) against
// the resources and returns the timing. numProcs is the number of abstract
// processors referenced by the tasks. The Result's slices are freshly
// allocated; use ScheduleInto with a Scratch on hot paths.
func Schedule(d *DAG, numProcs int, res Resources) Result {
	return ScheduleInto(new(Scratch), d, numProcs, res)
}

// ScheduleInto is Schedule with reusable state: the returned Result's
// slices alias the scratch and are valid only until its next use. The
// replay itself is identical to Schedule — same operations in the same
// order — so the two produce bit-identical timings.
func ScheduleInto(sc *Scratch, d *DAG, numProcs int, res Resources) Result {
	sc.reset(len(d.Tasks), numProcs)
	finish := sc.finish
	procFree := sc.procFree
	nicFree := sc.nicFree
	busy := sc.busy
	bytesOut := sc.bytesOut

	makespan := 0.0
	for _, t := range d.Tasks {
		ready := 0.0
		for _, dep := range t.Deps {
			if finish[dep] > ready {
				ready = finish[dep]
			}
		}
		var end float64
		switch t.Kind {
		case KindNop:
			end = ready
		case KindCompute:
			speed := res.Speed(t.Proc)
			if speed <= 0 || math.IsNaN(speed) {
				panic(fmt.Sprintf("sched: non-positive speed %v for processor %d", speed, t.Proc))
			}
			start := math.Max(ready, procFree[t.Proc])
			end = start + t.Units/speed
			procFree[t.Proc] = end
			busy[t.Proc] += t.Units / speed
		case KindTransfer:
			if t.Src == t.Dst {
				end = ready // self transfer is free
				break
			}
			link := res.Link(t.Src, t.Dst)
			occupy := t.Bytes/link.Bandwidth + link.Overhead
			start := ready
			if res.SerialiseNIC {
				start = math.Max(ready, nicFree[t.Src])
				nicFree[t.Src] = start + occupy
			}
			end = start + occupy + link.Latency
			bytesOut[t.Src] += t.Bytes
		}
		finish[t.ID] = end
		if end > makespan {
			makespan = end
		}
	}
	return Result{Makespan: makespan, Finish: finish, ProcBusy: busy, BytesOut: bytesOut}
}

// Makespan is a convenience wrapper returning only the makespan.
func Makespan(d *DAG, numProcs int, res Resources) float64 {
	return Schedule(d, numProcs, res).Makespan
}

// MakespanInto is Makespan with reusable state: the allocation-free inner
// loop of group selection.
func MakespanInto(sc *Scratch, d *DAG, numProcs int, res Resources) float64 {
	return ScheduleInto(sc, d, numProcs, res).Makespan
}

// CriticalPath returns the length of the longest dependency chain through
// the DAG under the given resources, ignoring resource contention: the
// lower bound no scheduler can beat. Comparing it with the scheduled
// makespan separates dependency-bound time from contention
// (makespan == critical path means resources never queued).
func CriticalPath(d *DAG, res Resources) float64 {
	finish := make([]float64, len(d.Tasks))
	longest := 0.0
	for _, t := range d.Tasks {
		ready := 0.0
		for _, dep := range t.Deps {
			if finish[dep] > ready {
				ready = finish[dep]
			}
		}
		var dur float64
		switch t.Kind {
		case KindCompute:
			dur = t.Units / res.Speed(t.Proc)
		case KindTransfer:
			if t.Src != t.Dst {
				link := res.Link(t.Src, t.Dst)
				dur = t.Bytes/link.Bandwidth + link.Overhead + link.Latency
			}
		}
		finish[t.ID] = ready + dur
		if finish[t.ID] > longest {
			longest = finish[t.ID]
		}
	}
	return longest
}
