package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func uniformRes(speed, lat, bw float64, serial bool) Resources {
	return Resources{
		Speed:        func(p int) float64 { return speed },
		Link:         func(src, dst int) Link { return Link{Latency: lat, Bandwidth: bw} },
		SerialiseNIC: serial,
	}
}

func TestSequentialChain(t *testing.T) {
	var d DAG
	a := d.AddCompute(0, 10, nil)
	b := d.AddCompute(0, 20, []int{a})
	d.AddCompute(0, 30, []int{b})
	got := Makespan(&d, 1, uniformRes(10, 0, 1e6, true))
	if got != 6 {
		t.Fatalf("chain makespan = %v, want 6", got)
	}
}

func TestParallelBranchesOnDistinctProcs(t *testing.T) {
	var d DAG
	fork := d.AddNop(nil)
	a := d.AddCompute(0, 10, []int{fork})
	b := d.AddCompute(1, 40, []int{fork})
	d.AddNop([]int{a, b})
	got := Makespan(&d, 2, uniformRes(10, 0, 1e6, true))
	if got != 4 {
		t.Fatalf("parallel makespan = %v, want 4 (max of 1 and 4)", got)
	}
}

func TestSameProcSerialisesParallelBranches(t *testing.T) {
	// Two "parallel" computations on one processor still serialise.
	var d DAG
	fork := d.AddNop(nil)
	a := d.AddCompute(0, 10, []int{fork})
	b := d.AddCompute(0, 10, []int{fork})
	d.AddNop([]int{a, b})
	got := Makespan(&d, 1, uniformRes(10, 0, 1e6, true))
	if got != 2 {
		t.Fatalf("same-proc makespan = %v, want 2", got)
	}
}

func TestTransferTiming(t *testing.T) {
	var d DAG
	d.AddTransfer(0, 1, 1e6, nil)
	got := Makespan(&d, 2, uniformRes(1, 0.5, 1e6, true))
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("transfer makespan = %v, want 1.5", got)
	}
}

func TestSelfTransferIsFree(t *testing.T) {
	var d DAG
	a := d.AddCompute(0, 10, nil)
	d.AddTransfer(0, 0, 1e9, []int{a})
	got := Makespan(&d, 1, uniformRes(10, 1, 1, true))
	if got != 1 {
		t.Fatalf("self transfer cost = %v, want 1", got)
	}
}

func TestNICSerialisation(t *testing.T) {
	// Three 1 MB transfers from proc 0 to distinct receivers at 1 MB/s.
	build := func() *DAG {
		var d DAG
		fork := d.AddNop(nil)
		for dst := 1; dst <= 3; dst++ {
			d.AddTransfer(0, dst, 1e6, []int{fork})
		}
		return &d
	}
	serial := Makespan(build(), 4, uniformRes(1, 0.001, 1e6, true))
	if math.Abs(serial-3.001) > 1e-9 {
		t.Fatalf("serialised fan-out = %v, want 3.001", serial)
	}
	parallel := Makespan(build(), 4, uniformRes(1, 0.001, 1e6, false))
	if math.Abs(parallel-1.001) > 1e-9 {
		t.Fatalf("ideal fan-out = %v, want 1.001", parallel)
	}
}

func TestDistinctSendersDontSerialise(t *testing.T) {
	// Switched network: transfers from different senders overlap.
	var d DAG
	fork := d.AddNop(nil)
	d.AddTransfer(0, 2, 1e6, []int{fork})
	d.AddTransfer(1, 3, 1e6, []int{fork})
	got := Makespan(&d, 4, uniformRes(1, 0, 1e6, true))
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("cross-pair makespan = %v, want 1.0", got)
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	var d DAG
	fork := d.AddNop(nil)
	a := d.AddCompute(0, 90, []int{fork}) // fast machine
	b := d.AddCompute(1, 90, []int{fork}) // slow machine
	d.AddNop([]int{a, b})
	res := Resources{
		Speed: func(p int) float64 {
			if p == 0 {
				return 90
			}
			return 9
		},
		Link:         func(int, int) Link { return Link{Bandwidth: 1e6} },
		SerialiseNIC: true,
	}
	got := Makespan(&d, 2, res)
	if got != 10 {
		t.Fatalf("hetero makespan = %v, want 10 (slow branch)", got)
	}
}

func TestResultAccounting(t *testing.T) {
	var d DAG
	a := d.AddCompute(0, 10, nil)
	d.AddTransfer(0, 1, 500, []int{a})
	r := Schedule(&d, 2, uniformRes(10, 0, 1e6, true))
	if r.ProcBusy[0] != 1 {
		t.Errorf("ProcBusy[0] = %v, want 1", r.ProcBusy[0])
	}
	if r.BytesOut[0] != 500 {
		t.Errorf("BytesOut[0] = %v, want 500", r.BytesOut[0])
	}
	if len(r.Finish) != 2 || r.Finish[1] <= r.Finish[0] {
		t.Errorf("Finish = %v", r.Finish)
	}
}

func TestInvalidConstruction(t *testing.T) {
	for name, f := range map[string]func(){
		"forward dep": func() { var d DAG; d.AddCompute(0, 1, []int{0}) },
		"neg units":   func() { var d DAG; d.AddCompute(0, -1, nil) },
		"neg bytes":   func() { var d DAG; d.AddTransfer(0, 1, -1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: the makespan is at least every lower bound — the critical path
// through dependencies and every processor's total work — and adding a
// task never decreases it.
func TestMakespanLowerBounds(t *testing.T) {
	f := func(seed []uint8) bool {
		var d DAG
		procWork := map[int]float64{}
		prev := -1
		for i, s := range seed {
			if len(d.Tasks) > 60 {
				break
			}
			proc := int(s % 4)
			units := float64(s%17) + 1
			var deps []int
			if s%3 == 0 && prev >= 0 {
				deps = []int{prev}
			}
			prev = d.AddCompute(proc, units, deps)
			procWork[proc] += units
			if i%7 == 6 {
				d.AddTransfer(proc, (proc+1)%4, float64(s)*100, []int{prev})
			}
		}
		if len(d.Tasks) == 0 {
			return true
		}
		res := uniformRes(10, 0.001, 1e6, true)
		m1 := Makespan(&d, 4, res)
		for _, w := range procWork {
			if m1 < w/10-1e-9 {
				return false
			}
		}
		// Monotonicity: appending more work cannot shrink the makespan.
		d.AddCompute(0, 5, nil)
		if Makespan(&d, 4, res) < m1-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathLowerBound(t *testing.T) {
	var d DAG
	fork := d.AddNop(nil)
	a := d.AddCompute(0, 10, []int{fork})
	b := d.AddCompute(0, 10, []int{fork}) // same processor: contends
	d.AddNop([]int{a, b})
	res := uniformRes(10, 0, 1e6, true)
	cp := CriticalPath(&d, res)
	ms := Makespan(&d, 1, res)
	if cp != 1 {
		t.Fatalf("critical path = %v, want 1 (one compute)", cp)
	}
	if ms != 2 {
		t.Fatalf("makespan = %v, want 2 (serialised)", ms)
	}
	if cp > ms {
		t.Fatal("critical path exceeds makespan")
	}
}

func TestCriticalPathEqualsMakespanWithoutContention(t *testing.T) {
	var d DAG
	a := d.AddCompute(0, 10, nil)
	tr := d.AddTransfer(0, 1, 1e6, []int{a})
	d.AddCompute(1, 20, []int{tr})
	res := uniformRes(10, 0.5, 1e6, true)
	cp := CriticalPath(&d, res)
	ms := Makespan(&d, 2, res)
	if math.Abs(cp-ms) > 1e-12 {
		t.Fatalf("chain without contention: cp %v != makespan %v", cp, ms)
	}
}

// Property: the critical path never exceeds the scheduled makespan.
func TestCriticalPathProperty(t *testing.T) {
	f := func(seed []uint8) bool {
		var d DAG
		prev := -1
		for _, s := range seed {
			if len(d.Tasks) > 50 {
				break
			}
			var deps []int
			if s%2 == 0 && prev >= 0 {
				deps = []int{prev}
			}
			if s%5 == 0 {
				prev = d.AddTransfer(int(s%3), int((s+1)%3), float64(s)*50, deps)
			} else {
				prev = d.AddCompute(int(s%3), float64(s%9)+1, deps)
			}
		}
		if len(d.Tasks) == 0 {
			return true
		}
		res := uniformRes(10, 0.001, 1e6, true)
		return CriticalPath(&d, res) <= Makespan(&d, 3, res)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
