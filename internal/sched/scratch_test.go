package sched

import (
	"testing"
)

// randomDAG builds a deterministic pseudo-random DAG over procs abstract
// processors: a mix of computes, transfers, and nops with arbitrary
// back-edges.
func randomDAG(seed uint64, tasks, procs int) *DAG {
	state := seed
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	d := &DAG{}
	for i := 0; i < tasks; i++ {
		var deps []int
		if i > 0 {
			for k := 0; k < next(3); k++ {
				deps = append(deps, next(i))
			}
		}
		switch next(3) {
		case 0:
			d.AddCompute(next(procs), float64(next(1000)+1), deps)
		case 1:
			d.AddTransfer(next(procs), next(procs), float64(next(100_000)), deps)
		default:
			d.AddNop(deps)
		}
	}
	return d
}

func testResources(procs int) Resources {
	return Resources{
		Speed: func(p int) float64 { return float64(10 + 7*p) },
		Link: func(src, dst int) Link {
			return Link{Latency: 150e-6, Bandwidth: float64(1e6 * (1 + (src+dst)%3)), Overhead: 20e-6}
		},
		SerialiseNIC: true,
	}
}

// TestScheduleIntoMatchesSchedule pins the allocation-free replay to the
// allocating one bit for bit, including per-task and per-processor detail.
func TestScheduleIntoMatchesSchedule(t *testing.T) {
	sc := new(Scratch)
	for _, cfg := range []struct {
		seed  uint64
		tasks int
		procs int
	}{
		{1, 40, 3},
		{2, 200, 9}, // bigger than the previous call: buffers must grow
		{3, 5, 2},   // smaller: stale state must be cleared
		{4, 120, 6},
	} {
		d := randomDAG(cfg.seed, cfg.tasks, cfg.procs)
		res := testResources(cfg.procs)
		want := Schedule(d, cfg.procs, res)
		got := ScheduleInto(sc, d, cfg.procs, res)
		if got.Makespan != want.Makespan {
			t.Fatalf("seed %d: makespan %v != %v", cfg.seed, got.Makespan, want.Makespan)
		}
		for i := range want.Finish {
			if got.Finish[i] != want.Finish[i] {
				t.Fatalf("seed %d: finish[%d] %v != %v", cfg.seed, i, got.Finish[i], want.Finish[i])
			}
		}
		for p := range want.ProcBusy {
			if got.ProcBusy[p] != want.ProcBusy[p] || got.BytesOut[p] != want.BytesOut[p] {
				t.Fatalf("seed %d: proc %d detail mismatch", cfg.seed, p)
			}
		}
	}
}

// TestMakespanIntoAllocationFree pins the point of the scratch: steady-state
// replays must not allocate.
func TestMakespanIntoAllocationFree(t *testing.T) {
	d := randomDAG(7, 300, 9)
	res := testResources(9)
	sc := new(Scratch)
	MakespanInto(sc, d, 9, res) // warm up the buffers
	allocs := testing.AllocsPerRun(50, func() {
		MakespanInto(sc, d, 9, res)
	})
	if allocs != 0 {
		t.Fatalf("MakespanInto allocates %v objects per replay, want 0", allocs)
	}
}
