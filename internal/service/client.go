package service

import (
	"encoding/json"
	"fmt"
	"net"

	"repro/internal/jobspec"
)

// Client talks the proto.go protocol to a running daemon. Each call
// dials a fresh connection (the protocol is one request per connection),
// so a zero-value-plus-address client is safe for concurrent use.
type Client struct {
	Network string // "unix" or "tcp"
	Addr    string
}

// NewClient returns a client for the daemon's unix control socket.
func NewClient(socket string) *Client {
	return &Client{Network: "unix", Addr: socket}
}

// roundTrip sends one request and decodes one response.
func (c *Client) roundTrip(req Request) (Response, error) {
	conn, err := net.Dial(c.Network, c.Addr)
	if err != nil {
		return Response{}, err
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("service: reading response: %w", err)
	}
	if !resp.OK {
		err = fmt.Errorf("%s", resp.Error)
	}
	return resp, err
}

// jobCall unwraps ops that answer with a job snapshot.
func (c *Client) jobCall(req Request) (JobInfo, error) {
	resp, err := c.roundTrip(req)
	if resp.Job != nil {
		return *resp.Job, err
	}
	if err == nil {
		err = fmt.Errorf("service: %s returned no job", req.Op)
	}
	return JobInfo{}, err
}

// Submit queues a job; wait blocks until it is terminal. A rejected job
// comes back with its snapshot AND a non-nil error.
func (c *Client) Submit(spec jobspec.Spec, wait bool) (JobInfo, error) {
	return c.jobCall(Request{Op: OpSubmit, Spec: &spec, Wait: wait})
}

// Status fetches a cheap job snapshot.
func (c *Client) Status(id string) (JobInfo, error) {
	return c.jobCall(Request{Op: OpStatus, ID: id})
}

// Result blocks until the job is terminal and fetches the full snapshot.
func (c *Client) Result(id string) (JobInfo, error) {
	return c.jobCall(Request{Op: OpResult, ID: id})
}

// Cancel cancels a queued job.
func (c *Client) Cancel(id string) (JobInfo, error) {
	return c.jobCall(Request{Op: OpCancel, ID: id})
}

// Stats fetches the server counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	return *resp.Stats, nil
}

// Shutdown asks the daemon to drain and exit.
func (c *Client) Shutdown() error {
	_, err := c.roundTrip(Request{Op: OpShutdown})
	return err
}

// Watch streams the job's event log from seq `from`: each batch of
// events is handed to fn as it appears, and the final full snapshot is
// returned once the job is terminal.
func (c *Client) Watch(id string, from int, fn func(JobEvent)) (JobInfo, error) {
	conn, err := net.Dial(c.Network, c.Addr)
	if err != nil {
		return JobInfo{}, err
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(Request{Op: OpWatch, ID: id, From: from}); err != nil {
		return JobInfo{}, err
	}
	dec := json.NewDecoder(conn)
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			return JobInfo{}, fmt.Errorf("service: watch stream: %w", err)
		}
		if !resp.OK {
			return JobInfo{}, fmt.Errorf("%s", resp.Error)
		}
		if fn != nil {
			for _, e := range resp.Events {
				fn(e)
			}
		}
		if resp.Final {
			if resp.Job == nil {
				return JobInfo{}, fmt.Errorf("service: watch closed without a snapshot")
			}
			return *resp.Job, nil
		}
	}
}
