// proto.go is hmpid's control-socket protocol: one JSON request per
// connection, answered by one JSON response — except `watch`, which
// streams the job's event log as JSON lines (one Response per batch)
// until the job is terminal, then closes with the full job snapshot.
// The transport is any net.Listener; the daemon uses a unix socket.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/jobspec"
)

// Ops accepted on the control socket.
const (
	OpSubmit   = "submit"
	OpStatus   = "status"
	OpResult   = "result"
	OpCancel   = "cancel"
	OpWatch    = "watch"
	OpStats    = "stats"
	OpShutdown = "shutdown"
)

// Request is one control-socket message from a client.
type Request struct {
	Op   string        `json:"op"`
	Spec *jobspec.Spec `json:"spec,omitempty"` // submit
	ID   string        `json:"id,omitempty"`   // status/result/cancel/watch
	From int           `json:"from,omitempty"` // watch: first event Seq wanted
	Wait bool          `json:"wait,omitempty"` // submit: block until terminal
}

// Response is one control-socket message to a client. Watch streams a
// Response per event batch (Events set, Final false), then a closing
// Response with the job snapshot and Final true.
type Response struct {
	OK     bool       `json:"ok"`
	Error  string     `json:"error,omitempty"`
	Job    *JobInfo   `json:"job,omitempty"`
	Stats  *Stats     `json:"stats,omitempty"`
	Events []JobEvent `json:"events,omitempty"`
	Final  bool       `json:"final,omitempty"`
}

// Serve accepts connections until the listener closes or a client issues
// a shutdown op; either way it closes the server (draining queued jobs)
// before returning. One goroutine per connection.
func (s *Server) Serve(ln net.Listener) error {
	var conns sync.WaitGroup
	shutdown := make(chan struct{})
	var once sync.Once
	for {
		conn, err := ln.Accept()
		if err != nil {
			conns.Wait()
			s.Close()
			select {
			case <-shutdown:
				return nil // deliberate stop, not an accept failure
			default:
				return err
			}
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			if s.handle(conn) {
				once.Do(func() { close(shutdown); ln.Close() })
			}
		}()
	}
}

// handle serves one connection; it reports whether the client asked for
// a daemon shutdown.
func (s *Server) handle(conn net.Conn) bool {
	defer conn.Close()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	var req Request
	if err := dec.Decode(&req); err != nil {
		if !errors.Is(err, io.EOF) {
			enc.Encode(Response{Error: fmt.Sprintf("bad request: %v", err)})
		}
		return false
	}
	switch req.Op {
	case OpSubmit:
		if req.Spec == nil {
			enc.Encode(Response{Error: "submit without spec"})
			return false
		}
		info, err := s.Submit(*req.Spec)
		if err != nil {
			enc.Encode(Response{Error: err.Error(), Job: maybeJob(info)})
			return false
		}
		if req.Wait {
			if info, err = s.Result(info.ID); err != nil {
				enc.Encode(Response{Error: err.Error()})
				return false
			}
		}
		enc.Encode(Response{OK: true, Job: &info})
	case OpStatus, OpResult, OpCancel:
		var info JobInfo
		var err error
		switch req.Op {
		case OpStatus:
			info, err = s.Status(req.ID)
		case OpResult:
			info, err = s.Result(req.ID)
		case OpCancel:
			info, err = s.Cancel(req.ID)
		}
		if err != nil {
			enc.Encode(Response{Error: err.Error(), Job: maybeJob(info)})
			return false
		}
		enc.Encode(Response{OK: true, Job: &info})
	case OpWatch:
		from := req.From
		for {
			evs, terminal, err := s.WatchEvents(req.ID, from)
			if err != nil {
				enc.Encode(Response{Error: err.Error()})
				return false
			}
			if len(evs) > 0 {
				if err := enc.Encode(Response{OK: true, Events: evs}); err != nil {
					return false // watcher went away
				}
				from = evs[len(evs)-1].Seq + 1
			}
			if terminal {
				info, err := s.Result(req.ID)
				if err != nil {
					enc.Encode(Response{Error: err.Error()})
					return false
				}
				enc.Encode(Response{OK: true, Job: &info, Final: true})
				return false
			}
		}
	case OpStats:
		st := s.Stats()
		enc.Encode(Response{OK: true, Stats: &st})
	case OpShutdown:
		enc.Encode(Response{OK: true})
		return true
	default:
		enc.Encode(Response{Error: fmt.Sprintf("unknown op %q", req.Op)})
	}
	return false
}

// maybeJob returns &info when it names a job (rejections carry one).
func maybeJob(info JobInfo) *JobInfo {
	if info.ID == "" {
		return nil
	}
	return &info
}
