package service

import (
	"net"
	"path/filepath"
	"testing"

	"repro/internal/jobspec"
)

// startDaemon runs a server behind a unix control socket and returns a
// client plus the Serve error channel.
func startDaemon(t *testing.T, cfg Config) (*Client, chan error) {
	t.Helper()
	socket := filepath.Join(t.TempDir(), "hmpid.sock")
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()
	t.Cleanup(func() {
		ln.Close()
		<-errc // Serve closed the server; just collect it
	})
	return NewClient(socket), errc
}

// TestProtoRoundTrip exercises the whole JSON job API over the socket:
// submit, status, watch-stream, result, stats, shutdown.
func TestProtoRoundTrip(t *testing.T) {
	c, errc := startDaemon(t, Config{Workers: 2})

	spec := jobspec.Default()
	spec.Nodes, spec.Iters, spec.Tenant = 40_000, 2, "acme"
	sub, err := c.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Predicted <= 0 {
		t.Fatalf("bad submission echo: %+v", sub)
	}
	if _, err := c.Status(sub.ID); err != nil {
		t.Fatal(err)
	}

	// Watch streams the event log and closes with the full snapshot.
	var seen []State
	final, err := c.Watch(sub.ID, 0, func(e JobEvent) { seen = append(seen, e.State) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || seen[0] != StateQueued || final.State != StateDone {
		t.Fatalf("watch saw %v, final %v", seen, final.State)
	}
	if final.Result == nil || final.Trace == nil || final.Metrics == nil {
		t.Fatalf("final snapshot incomplete: result %v trace %v metrics %v",
			final.Result != nil, final.Trace != nil, final.Metrics != nil)
	}

	// Submit-and-wait resolves in one round trip; a repeated spec must be
	// bit-identical and cache-warm.
	again, err := c.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || again.Result.Makespan != final.Result.Makespan {
		t.Fatalf("repeat run diverged: %v vs %v", again.Result, final.Result)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.States[StateDone] != 2 || st.Tenants["acme"] != 2 || st.Cache.Hits == 0 {
		t.Fatalf("stats wrong: %+v", st)
	}

	// Unknown ops and unknown jobs answer with errors, not hangs.
	if _, err := c.Status("j404"); err == nil {
		t.Fatal("status of unknown job succeeded")
	}
	if _, err := c.roundTrip(Request{Op: "bogus"}); err == nil {
		t.Fatal("unknown op succeeded")
	}

	// Shutdown drains and Serve returns nil.
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Serve returned %v after shutdown", err)
	}
	errc <- nil // keep Cleanup's drain satisfied
}

// TestProtoRejectionCarriesJob: a rejected submission still returns the
// job snapshot so the client can report the admission price.
func TestProtoRejectionCarriesJob(t *testing.T) {
	spec := jobspec.Default()
	spec.Nodes, spec.Iters = 40_000, 2
	price, err := spec.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startDaemon(t, Config{Workers: 1, Budget: price / 2})
	info, err := c.Submit(spec, false)
	if err == nil {
		t.Fatal("over-budget submission succeeded")
	}
	if info.State != StateRejected || info.Predicted <= 0 {
		t.Fatalf("rejection lost the job snapshot: %+v", info)
	}
}
