// Package service is hmpid's core: a long-running, multi-tenant HMPI job
// service. One daemon process keeps the expensive state warm across jobs —
// the selection cache most of all — and runs many concurrent jobs, each on
// its own per-job hmpi.Runtime (New → Run → Finalize per job, never per
// process).
//
// The pieces, mapped to the paper's runtime:
//
//   - A worker pool executes queued jobs concurrently. Runtimes share no
//     mutable state (hmpi.New clones the cluster per job), so a job's
//     simulated makespan is bit-identical to the same spec run serially
//     through hmpirun — concurrency changes throughput, never results.
//   - A daemon-lifetime selection cache (mapper.SelectionCache) carries
//     HMPI_Group_create's canonical-key memoisation across jobs, qualified
//     by cost-model namespaces so tenants on different clusters never
//     alias entries.
//   - Admission control prices every submission with HMPI_Timeof
//     (jobspec.Predict, itself cache-warm): jobs whose predicted makespan
//     exceeds the configured budget are rejected at submit time, and a
//     deficit scheduler shares the workers fairly across tenants.
//   - Each job records a structured trace; its summary and a metrics
//     registry snapshot are attached to the job and streamed to watchers
//     over the control socket (see proto.go).
package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/hmpi"
	"repro/internal/jobspec"
	"repro/internal/mapper"
	trc "repro/internal/trace"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateRejected  State = "rejected"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state will change no further.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateRejected, StateCancelled:
		return true
	}
	return false
}

// Config tunes a Server.
type Config struct {
	// Workers is the size of the execution pool (default 4).
	Workers int
	// QueueDepth bounds jobs queued but not yet running (default 256);
	// submissions beyond it are rejected, pushing back on producers.
	QueueDepth int
	// CacheEntries bounds the shared selection cache
	// (mapper.DefaultSelectionCacheEntries when 0).
	CacheEntries int
	// Budget, when positive, is the admission ceiling: a job whose
	// HMPI_Timeof-predicted makespan (simulated seconds) exceeds it is
	// rejected at submit time.
	Budget float64
	// TenantQueueDepth, when positive, additionally bounds one tenant's
	// queued jobs, so a single tenant cannot occupy the whole queue.
	TenantQueueDepth int
	// TraceShardCap bounds each job recorder's per-rank event ring
	// (default 4096). The daemon condenses every trace to a summary and a
	// metrics snapshot, so a bounded ring is the right trade: a small job
	// keeps its full trace, a huge one reports Dropped instead of paying
	// the full recorder allocation on every run.
	TraceShardCap int
}

// JobEvent is one entry of a job's event log, streamed to watchers.
type JobEvent struct {
	Seq   int    `json:"seq"`
	State State  `json:"state"`
	Note  string `json:"note,omitempty"`
}

// TraceSummary condenses a job's recorded trace.
type TraceSummary struct {
	Events   int     `json:"events"`
	Dropped  int64   `json:"dropped"`
	Makespan float64 `json:"makespan"`
}

// JobInfo is the API snapshot of one job.
type JobInfo struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant,omitempty"`
	State     State           `json:"state"`
	Spec      jobspec.Spec    `json:"spec"`
	Predicted float64         `json:"predicted,omitempty"`
	Result    *jobspec.Result `json:"result,omitempty"`
	Err       string          `json:"error,omitempty"`
	Events    []JobEvent      `json:"events,omitempty"`
	Trace     *TraceSummary   `json:"trace,omitempty"`
	Metrics   *trc.Snapshot   `json:"metrics,omitempty"`
}

// Stats is the server-wide counters snapshot.
type Stats struct {
	Queued, Running, Done, Failed, Rejected, Cancelled int64             `json:"-"`
	States                                             map[State]int64   `json:"states"`
	Tenants                                            map[string]int64  `json:"tenants"` // jobs served per tenant
	Cache                                              mapper.CacheStats `json:"cache"`
	UptimeSeconds                                      float64           `json:"uptime_seconds"`
}

// job is the server-private job record.
type job struct {
	id        string
	tenant    string
	spec      jobspec.Spec
	state     State
	predicted float64
	result    *jobspec.Result
	err       string
	events    []JobEvent
	trace     *TraceSummary
	metrics   *trc.Snapshot
	done      chan struct{}
}

// Server is the job service. Create with New, serve its API with Serve
// (proto.go) or call the exported methods directly, stop with Close.
type Server struct {
	cfg   Config
	cache *mapper.SelectionCache
	start time.Time

	mu      sync.Mutex
	cond    *sync.Cond // signalled on queue growth and shutdown
	jobs    map[string]*job
	pending map[string][]*job // per-tenant FIFO of queued jobs
	served  map[string]int64  // per-tenant deficit counters
	nextID  int64
	closed  bool
	wg      sync.WaitGroup
}

// New starts a server and its worker pool.
func New(cfg Config) *Server {
	s := newServer(cfg)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// newServer builds the server state without starting workers (tests use
// this to exercise queueing and admission deterministically).
func newServer(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.TraceShardCap <= 0 {
		cfg.TraceShardCap = 4096
	}
	s := &Server{
		cfg:     cfg,
		cache:   mapper.NewSelectionCache(cfg.CacheEntries),
		start:   time.Now(),
		jobs:    make(map[string]*job),
		pending: make(map[string][]*job),
		served:  make(map[string]int64),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Cache exposes the daemon-lifetime selection cache (benchmarks read its
// hit rate; tests reset it between phases).
func (s *Server) Cache() *mapper.SelectionCache { return s.cache }

// Submit prices the job, applies admission control, and queues it.
// It returns the job's snapshot — including its admission price — or an
// error when the job is malformed or rejected; rejected jobs are kept and
// queryable by ID (the returned snapshot names it).
func (s *Server) Submit(spec jobspec.Spec) (JobInfo, error) {
	if err := spec.Normalize(); err != nil {
		return JobInfo{}, err
	}
	// Price first, outside the lock: Predict runs a selection search
	// (cache-warm when the spec repeats).
	predicted, perr := spec.Predict(s.cache)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobInfo{}, fmt.Errorf("service: server is shut down")
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j%d", s.nextID),
		tenant:    spec.Tenant,
		spec:      spec,
		predicted: predicted,
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	reject := func(format string, args ...any) (JobInfo, error) {
		j.err = fmt.Sprintf(format, args...)
		s.transitionLocked(j, StateRejected, j.err)
		close(j.done)
		return s.infoLocked(j, true), fmt.Errorf("service: job %s rejected: %s", j.id, j.err)
	}
	if perr != nil {
		return reject("unpriceable spec: %v", perr)
	}
	if s.cfg.Budget > 0 && predicted > s.cfg.Budget {
		return reject("predicted makespan %.6gs exceeds budget %.6gs", predicted, s.cfg.Budget)
	}
	queued := 0
	for _, q := range s.pending {
		queued += len(q)
	}
	if queued >= s.cfg.QueueDepth {
		return reject("queue full (%d jobs)", queued)
	}
	if s.cfg.TenantQueueDepth > 0 && len(s.pending[j.tenant]) >= s.cfg.TenantQueueDepth {
		return reject("tenant %q queue full (%d jobs)", j.tenant, len(s.pending[j.tenant]))
	}
	s.transitionLocked(j, StateQueued, fmt.Sprintf("predicted %.6gs", predicted))
	s.pending[j.tenant] = append(s.pending[j.tenant], j)
	s.cond.Broadcast()
	return s.infoLocked(j, true), nil
}

// Status returns a job snapshot without its event log and attachments
// (full=false keeps status cheap); Result returns everything.
func (s *Server) Status(id string) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("service: no job %q", id)
	}
	return s.infoLocked(j, false), nil
}

// Result returns the full job snapshot, blocking until the job reaches a
// terminal state.
func (s *Server) Result(id string) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("service: no job %q", id)
	}
	<-j.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked(j, true), nil
}

// Cancel cancels a queued job. Running jobs cannot be interrupted (a
// simulated run is one atomic computation); terminal jobs are left as
// they ended.
func (s *Server) Cancel(id string) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("service: no job %q", id)
	}
	switch j.state {
	case StateQueued:
		q := s.pending[j.tenant]
		for i, p := range q {
			if p == j {
				s.pending[j.tenant] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		if len(s.pending[j.tenant]) == 0 {
			delete(s.pending, j.tenant)
		}
		s.transitionLocked(j, StateCancelled, "cancelled while queued")
		close(j.done)
		return s.infoLocked(j, false), nil
	case StateRunning:
		return s.infoLocked(j, false), fmt.Errorf("service: job %s is running; a simulated run cannot be interrupted", id)
	default:
		return s.infoLocked(j, false), nil
	}
}

// WatchEvents returns the job's events with Seq >= from, blocking until
// at least one such event exists or the job is terminal. The second
// result reports whether the job is terminal (no further events will
// come). The proto layer calls this in a loop to stream.
func (s *Server) WatchEvents(id string, from int) ([]JobEvent, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false, fmt.Errorf("service: no job %q", id)
	}
	for len(j.events) <= from && !j.state.Terminal() {
		s.cond.Wait()
	}
	evs := append([]JobEvent(nil), j.events[min(max(from, 0), len(j.events)):]...)
	return evs, j.state.Terminal(), nil
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		States:        make(map[State]int64),
		Tenants:       make(map[string]int64, len(s.served)),
		Cache:         s.cache.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	for _, j := range s.jobs {
		st.States[j.state]++
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateRejected:
			st.Rejected++
		case StateCancelled:
			st.Cancelled++
		}
	}
	for t, n := range s.served {
		st.Tenants[t] = n
	}
	return st
}

// Close stops accepting submissions, drains the queue (queued and running
// jobs complete), and stops the workers. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// transitionLocked moves a job to a new state, appending to its event log
// and waking watchers. Callers hold s.mu.
func (s *Server) transitionLocked(j *job, to State, note string) {
	j.state = to
	j.events = append(j.events, JobEvent{Seq: len(j.events), State: to, Note: note})
	s.cond.Broadcast()
}

// noteLocked appends an informational event without a state change.
func (s *Server) noteLocked(j *job, note string) {
	j.events = append(j.events, JobEvent{Seq: len(j.events), State: j.state, Note: note})
	s.cond.Broadcast()
}

// infoLocked snapshots a job. full attaches the event log, trace summary,
// metrics, and result payload.
func (s *Server) infoLocked(j *job, full bool) JobInfo {
	info := JobInfo{
		ID: j.id, Tenant: j.tenant, State: j.state,
		Spec: j.spec, Predicted: j.predicted, Err: j.err,
	}
	if full {
		info.Events = append([]JobEvent(nil), j.events...)
		info.Result = j.result
		info.Trace = j.trace
		info.Metrics = j.metrics
	} else if j.state.Terminal() {
		info.Result = j.result
	}
	return info
}

// nextLocked picks the next queued job fairly: the tenant with the lowest
// served count wins (ties by tenant name, so the order is deterministic),
// and its oldest job runs. Returns nil when nothing is queued.
func (s *Server) nextLocked() *job {
	var tenants []string
	for t, q := range s.pending {
		if len(q) > 0 {
			tenants = append(tenants, t)
		}
	}
	if len(tenants) == 0 {
		return nil
	}
	sort.Strings(tenants)
	best := tenants[0]
	for _, t := range tenants[1:] {
		if s.served[t] < s.served[best] {
			best = t
		}
	}
	q := s.pending[best]
	j := q[0]
	if len(q) == 1 {
		delete(s.pending, best)
	} else {
		s.pending[best] = q[1:]
	}
	s.served[best]++
	return j
}

// worker is one pool goroutine: pick fairly, run, record, repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			if j = s.nextLocked(); j != nil {
				break
			}
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		s.transitionLocked(j, StateRunning, "")
		s.mu.Unlock()

		res, tr, mx, err := s.run(j)

		s.mu.Lock()
		if err != nil {
			j.err = err.Error()
			s.transitionLocked(j, StateFailed, j.err)
		} else {
			j.result, j.trace, j.metrics = res, tr, mx
			s.noteLocked(j, fmt.Sprintf("trace %d events, makespan %.6gs", tr.Events, tr.Makespan))
			s.transitionLocked(j, StateDone, fmt.Sprintf("makespan %.6gs", float64(res.Makespan)))
		}
		close(j.done)
		s.mu.Unlock()
	}
}

// run executes one job on a fresh runtime with a recorder attached, and
// condenses its observability payload.
func (s *Server) run(j *job) (*jobspec.Result, *TraceSummary, *trc.Snapshot, error) {
	var rec *trc.Recorder
	res, err := jobspec.Execute(j.spec, jobspec.ExecOptions{
		Selection: s.cache,
		OnRuntime: func(rt *hmpi.Runtime) {
			rec = rt.EnableRecorder(j.spec.App, trc.Options{ShardCap: s.cfg.TraceShardCap})
		},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	d := rec.Data()
	tr := &TraceSummary{
		Events:   len(d.Events()),
		Dropped:  d.Meta.Dropped,
		Makespan: float64(d.Makespan()),
	}
	reg := trc.NewRegistry()
	reg.FillFromData(d)
	snap := reg.Snapshot()
	return res, tr, &snap, nil
}
