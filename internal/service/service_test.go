package service

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/hnoc"
	"repro/internal/jobspec"
)

// quickSpec returns a small em3d job; vary nodes for distinct problems.
func quickSpec(nodes int) jobspec.Spec {
	s := jobspec.Default()
	s.Nodes, s.Iters = nodes, 2
	return s
}

// mixedSpecs returns n distinct quick jobs across all three apps.
func mixedSpecs(n int) []jobspec.Spec {
	specs := make([]jobspec.Spec, 0, n)
	for i := 0; len(specs) < n; i++ {
		switch i % 3 {
		case 0:
			specs = append(specs, quickSpec(40_000+1_000*i))
		case 1:
			specs = append(specs, jobspec.Spec{App: "jacobi", Grid: 300 + 20*i, P: 4, Iters: 2})
		default:
			specs = append(specs, jobspec.Spec{App: "matmul", N: 24, R: 4, M: 3, L: 4 + i%3*4})
		}
	}
	return specs
}

func TestSubmitRunsJob(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	info, err := s.Submit(quickSpec(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if info.Predicted <= 0 {
		t.Fatalf("submission not priced: %+v", info)
	}
	done, err := s.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Result == nil || done.Result.Makespan <= 0 {
		t.Fatalf("job did not complete: %+v", done)
	}
	if done.Trace == nil || done.Trace.Events == 0 || done.Trace.Makespan <= 0 {
		t.Fatalf("no trace summary attached: %+v", done.Trace)
	}
	if done.Metrics == nil || len(done.Metrics.Counters) == 0 {
		t.Fatal("no metrics snapshot attached")
	}
	// The event log tells the whole story in order.
	var states []State
	for _, e := range done.Events {
		states = append(states, e.State)
	}
	want := []State{StateQueued, StateRunning, StateRunning, StateDone}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("event states = %v, want %v", states, want)
	}
}

// TestAdmissionBudget: pricing by HMPI_Timeof gates admission.
func TestAdmissionBudget(t *testing.T) {
	spec := quickSpec(40_000)
	price, err := spec.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Budget: price / 2})
	defer s.Close()
	info, err := s.Submit(spec)
	if err == nil {
		t.Fatal("over-budget job admitted")
	}
	if info.State != StateRejected || !strings.Contains(info.Err, "exceeds budget") {
		t.Fatalf("wrong rejection: %+v", info)
	}
	// Rejected jobs stay queryable.
	got, err := s.Status(info.ID)
	if err != nil || got.State != StateRejected {
		t.Fatalf("rejected job not queryable: %+v, %v", got, err)
	}
	// Raising the budget admits the same spec.
	s2 := New(Config{Workers: 1, Budget: price * 2})
	defer s2.Close()
	if _, err := s2.Submit(spec); err != nil {
		t.Fatalf("under-budget job rejected: %v", err)
	}
}

// TestAdmissionQueueDepth: global and per-tenant queue bounds reject at
// submit time (worker-less server, so nothing drains the queue).
func TestAdmissionQueueDepth(t *testing.T) {
	s := newServer(Config{QueueDepth: 2, TenantQueueDepth: 1})
	spec := quickSpec(40_000)
	spec.Tenant = "a"
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if info, err := s.Submit(spec); err == nil || info.State != StateRejected ||
		!strings.Contains(info.Err, `tenant "a" queue full`) {
		t.Fatalf("tenant bound not enforced: %+v, %v", info, err)
	}
	spec.Tenant = "b"
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	spec.Tenant = "c"
	if info, err := s.Submit(spec); err == nil || !strings.Contains(info.Err, "queue full") {
		t.Fatalf("global bound not enforced: %+v, %v", info, err)
	}
}

// TestUnpriceableRejected: a spec Predict cannot price is rejected (here
// a valid two-machine cluster that cannot seat em3d's nine processes).
func TestUnpriceableRejected(t *testing.T) {
	s := newServer(Config{})
	spec := quickSpec(40_000)
	spec.Cluster = &hnoc.Cluster{
		Machines: []hnoc.Machine{{Name: "a", Speed: 40}, {Name: "b", Speed: 50}},
		Remote:   hnoc.Ethernet100(),
		Local:    hnoc.SharedMemory(),
	}
	info, err := s.Submit(spec)
	if err == nil || info.State != StateRejected || !strings.Contains(info.Err, "unpriceable") {
		t.Fatalf("unpriceable job admitted: %+v, %v", info, err)
	}
}

// TestFairScheduling: the deficit scheduler round-robins tenants no
// matter how unbalanced the queues are, deterministically.
func TestFairScheduling(t *testing.T) {
	s := newServer(Config{})
	submit := func(tenant string) {
		spec := quickSpec(40_000)
		spec.Tenant = tenant
		if _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	// Tenant a floods; b and c each queue one job.
	for i := 0; i < 4; i++ {
		submit("a")
	}
	submit("b")
	submit("c")
	var order []string
	s.mu.Lock()
	for j := s.nextLocked(); j != nil; j = s.nextLocked() {
		order = append(order, j.tenant)
	}
	s.mu.Unlock()
	want := []string{"a", "b", "c", "a", "a", "a"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("schedule order = %v, want %v", order, want)
	}
}

func TestCancel(t *testing.T) {
	s := newServer(Config{}) // no workers: jobs stay queued
	info, err := s.Submit(quickSpec(40_000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Cancel(info.ID)
	if err != nil || got.State != StateCancelled {
		t.Fatalf("cancel failed: %+v, %v", got, err)
	}
	// Result resolves immediately for a cancelled job; cancelling again
	// is a no-op.
	if got, err = s.Result(info.ID); err != nil || got.State != StateCancelled {
		t.Fatalf("cancelled job not terminal: %+v, %v", got, err)
	}
	if got, err = s.Cancel(info.ID); err != nil || got.State != StateCancelled {
		t.Fatalf("re-cancel not idempotent: %+v, %v", got, err)
	}
	if _, err := s.Cancel("j999"); err == nil {
		t.Fatal("cancelling an unknown job succeeded")
	}
}

// TestConcurrentMatchesSerial is the daemon's core guarantee: >= 8 jobs
// in flight at once through the shared-cache worker pool produce
// makespans bit-identical to the same specs run serially and uncached
// through the hmpirun path (jobspec.Execute). Run under -race in CI.
func TestConcurrentMatchesSerial(t *testing.T) {
	specs := mixedSpecs(12)

	// Serial reference: no daemon, no cache — exactly what hmpirun does.
	serial := make([]*jobspec.Result, len(specs))
	for i, sp := range specs {
		res, err := jobspec.Execute(sp, jobspec.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}

	s := New(Config{Workers: 8})
	defer s.Close()
	var wg sync.WaitGroup
	got := make([]*jobspec.Result, len(specs))
	errs := make([]error, len(specs))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp jobspec.Spec) {
			defer wg.Done()
			info, err := s.Submit(sp)
			if err == nil {
				info, err = s.Result(info.ID)
			}
			if err == nil {
				got[i] = info.Result
			}
			errs[i] = err
		}(i, sp)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if got[i].Makespan != serial[i].Makespan || got[i].Time != serial[i].Time {
			t.Fatalf("job %d (%s): daemon makespan %v/%v != serial %v/%v",
				i, specs[i].App, got[i].Makespan, got[i].Time, serial[i].Makespan, serial[i].Time)
		}
	}
	if st := s.Stats(); st.Done != int64(len(specs)) {
		t.Fatalf("stats done = %d, want %d", st.Done, len(specs))
	}
}

// TestCacheCarriesAcrossJobs: repeated specs hit the daemon-lifetime
// cache, and the stats expose it.
func TestCacheCarriesAcrossJobs(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	spec := quickSpec(40_000)
	for i := 0; i < 3; i++ {
		info, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Result(info.ID); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Cache.Hits == 0 || st.Cache.SolveHits == 0 {
		t.Fatalf("repeated specs never hit the daemon cache: %+v", st.Cache)
	}
	if st.Cache.SolveHitRate() <= 0.5 {
		t.Fatalf("solve hit rate %.2f on identical repeats, want > 0.5", st.Cache.SolveHitRate())
	}
	if st.Tenants[""] != 3 {
		t.Fatalf("served counter = %v, want 3", st.Tenants)
	}
}

// TestWatchEvents: watchers see the full ordered event log and learn
// the job is terminal.
func TestWatchEvents(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	info, err := s.Submit(quickSpec(40_000))
	if err != nil {
		t.Fatal(err)
	}
	var evs []JobEvent
	from := 0
	for {
		batch, terminal, err := s.WatchEvents(info.ID, from)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, batch...)
		if len(batch) > 0 {
			from = batch[len(batch)-1].Seq + 1
		}
		if terminal && len(batch) == 0 {
			break
		}
	}
	if len(evs) < 3 || evs[0].State != StateQueued || evs[len(evs)-1].State != StateDone {
		t.Fatalf("watch saw %v", evs)
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

// TestCloseDrains: Close refuses new work but completes queued jobs.
func TestCloseDrains(t *testing.T) {
	s := New(Config{Workers: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		info, err := s.Submit(quickSpec(40_000 + 1_000*i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	s.Close()
	if _, err := s.Submit(quickSpec(40_000)); err == nil {
		t.Fatal("submit after Close succeeded")
	}
	for _, id := range ids {
		info, err := s.Result(id)
		if err != nil || info.State != StateDone {
			t.Fatalf("job %s not drained: %+v, %v", id, info, err)
		}
	}
	s.Close() // idempotent
}
