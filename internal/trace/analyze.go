package trace

// Trace analyses: per-link traffic matrices, per-rank activity breakdown,
// and critical-path extraction over the happens-before graph of the run.
// All three read a Data snapshot, so they work on live recordings and on
// binary trace files alike.

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/vclock"
)

// LinkMatrix aggregates the point-to-point traffic of a run into
// rank-by-rank matrices: Bytes[src][dst] and Messages[src][dst] count the
// payload bytes and messages sent from world rank src to world rank dst.
// Collective traffic is included — collectives decompose into the sends
// their algorithm performs, which is exactly what a per-link view is for.
type LinkMatrix struct {
	Bytes    [][]int64
	Messages [][]int64
}

// Links builds the traffic matrices from the snapshot's send events.
func Links(d *Data) *LinkMatrix {
	n := d.NumRanks()
	m := &LinkMatrix{Bytes: make([][]int64, n), Messages: make([][]int64, n)}
	for i := range m.Bytes {
		m.Bytes[i] = make([]int64, n)
		m.Messages[i] = make([]int64, n)
	}
	for _, evs := range d.PerRank {
		for i := range evs {
			e := &evs[i]
			if e.Kind != KindSend || e.Peer < 0 || int(e.Peer) >= n {
				continue
			}
			m.Bytes[e.Rank][e.Peer] += e.Bytes
			m.Messages[e.Rank][e.Peer]++
		}
	}
	return m
}

// Render prints the byte matrix as an aligned table (rows = senders).
func (m *LinkMatrix) Render(w io.Writer) error {
	n := len(m.Bytes)
	if _, err := fmt.Fprintf(w, "%8s", "src\\dst"); err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		if _, err := fmt.Fprintf(w, " %10d", j); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%8d", i); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if _, err := fmt.Fprintf(w, " %10d", m.Bytes[i][j]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RankActivity is one rank's virtual-time budget: how much of the run it
// spent computing, in communication calls (send serialisation plus
// receive waiting), and idle (neither recorded activity).
type RankActivity struct {
	Rank    int         `json:"rank"`
	Compute vclock.Time `json:"compute_s"`
	Comm    vclock.Time `json:"comm_s"`
	Idle    vclock.Time `json:"idle_s"`
}

// Breakdown computes the per-rank activity budget against the run's
// makespan. Overlapping intervals on one rank (a receive posted during an
// enclosing region, say) are merged per category before idle time is
// derived, so the three columns never exceed the makespan.
func Breakdown(d *Data) []RankActivity {
	makespan := d.Makespan()
	out := make([]RankActivity, d.NumRanks())
	for r, evs := range d.PerRank {
		var compute, comm []interval
		for i := range evs {
			e := &evs[i]
			switch e.Kind {
			case KindCompute:
				compute = append(compute, interval{e.Start, e.End})
			case KindSend, KindRecv:
				comm = append(comm, interval{e.Start, e.End})
			}
		}
		c := coveredTime(compute)
		m := coveredTime(comm)
		idle := makespan - c - m
		if idle < 0 {
			idle = 0
		}
		out[r] = RankActivity{Rank: r, Compute: c, Comm: m, Idle: idle}
	}
	return out
}

type interval struct{ lo, hi vclock.Time }

// coveredTime returns the total length of the union of the intervals.
func coveredTime(ivs []interval) vclock.Time {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var total vclock.Time
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.lo <= cur.hi {
			if iv.hi > cur.hi {
				cur.hi = iv.hi
			}
			continue
		}
		total += cur.hi - cur.lo
		cur = iv
	}
	return total + cur.hi - cur.lo
}

// PathStep is one event on the critical path, annotated with how much
// virtual time the step contributes to the path.
type PathStep struct {
	Event    Event
	Duration vclock.Time
}

// CriticalPath is the longest happens-before chain of the run: the
// sequence of events that ends at the run's final activity and, walked
// backwards, always follows the binding constraint (the matched send for
// a receive, the previous activity on the same rank otherwise). Shrinking
// anything off this chain shrinks the makespan; shrinking anything else
// does not.
type CriticalPath struct {
	Steps []PathStep
	// ByKind sums the path's step durations per event kind.
	ByKind map[Kind]vclock.Time
	// Makespan is the virtual end time of the path's last event.
	Makespan vclock.Time
}

// sendKey pairs sends with receives: the simulation's messages are FIFO
// per (sender, receiver, context, tag), so matching the k-th recv with
// the k-th send of its key reconstructs the happens-before edges exactly.
type sendKey struct {
	src, dst int32
	ctx      int64
	tag      int32
}

// ExtractCriticalPath walks the happens-before graph backwards from the
// event with the largest virtual end time. Point events (instants) and
// region/collective wrappers are skipped: the path runs over the atomic
// activities (compute, send, recv) that actually occupy virtual time.
func ExtractCriticalPath(d *Data) *CriticalPath {
	// Per-rank atomic activities in emission order (which is also
	// virtual-time order within one rank).
	perRank := make([][]Event, d.NumRanks())
	sends := make(map[sendKey][]Event)
	for r, evs := range d.PerRank {
		for i := range evs {
			e := evs[i]
			switch e.Kind {
			case KindCompute, KindSend, KindRecv:
				perRank[r] = append(perRank[r], e)
			default:
				continue
			}
			if e.Kind == KindSend {
				k := sendKey{src: e.Rank, dst: e.Peer, ctx: e.Ctx, tag: e.Tag}
				sends[k] = append(sends[k], e)
			}
		}
	}
	// Consume send queues in FIFO order per key as receives are matched.
	// Receives must be matched in each key's arrival order, which equals
	// the per-rank emission order of the recv events; walk all receives
	// up front to build the recv -> send mapping.
	matched := make(map[eventID]Event)
	next := make(map[sendKey]int)
	for r, evs := range perRank {
		for i := range evs {
			e := &evs[i]
			if e.Kind != KindRecv {
				continue
			}
			k := sendKey{src: e.Peer, dst: e.Rank, ctx: e.Ctx, tag: e.Tag}
			if q := sends[k]; next[k] < len(q) {
				matched[eventID{r, i}] = q[next[k]]
				next[k]++
			}
		}
	}
	// Index each rank's activities so a send event can be located again
	// when the walk jumps rank through a recv -> send edge.
	cp := &CriticalPath{ByKind: make(map[Kind]vclock.Time)}
	curRank, curIdx := -1, -1
	for r, evs := range perRank {
		for i := range evs {
			if curRank < 0 || evs[i].End > perRank[curRank][curIdx].End {
				curRank, curIdx = r, i
			}
		}
	}
	if curRank < 0 {
		return cp
	}
	cp.Makespan = perRank[curRank][curIdx].End
	var rev []PathStep
	for curRank >= 0 && len(rev) < 1_000_000 {
		e := perRank[curRank][curIdx]
		rev = append(rev, PathStep{Event: e, Duration: e.End - e.Start})
		// Predecessors: the matched send (for a recv) and the previous
		// activity on the same rank. The binding one ends latest — it is
		// what this event actually waited for.
		var prevRank, prevIdx = -1, -1
		if curIdx > 0 {
			prevRank, prevIdx = curRank, curIdx-1
		}
		if e.Kind == KindRecv {
			if s, ok := matched[eventID{curRank, curIdx}]; ok {
				si := locate(perRank[s.Rank], s)
				// A self-send sits on the same rank as its receive; only
				// an earlier index is a predecessor (guards the walk
				// against cycles).
				if si >= 0 && (int(s.Rank) != curRank || si < curIdx) {
					if prevRank < 0 || s.End >= perRank[prevRank][prevIdx].End {
						prevRank, prevIdx = int(s.Rank), si
					}
				}
			}
		}
		curRank, curIdx = prevRank, prevIdx
	}
	// Reverse into forward order.
	cp.Steps = make([]PathStep, len(rev))
	for i, s := range rev {
		cp.Steps[len(rev)-1-i] = s
		cp.ByKind[s.Event.Kind] += s.Duration
	}
	return cp
}

type eventID struct{ rank, idx int }

// locate finds the index of event e in a rank's activity list by its
// identity fields (start, end, kind, peer, seq of identical events is
// resolved by taking the first unconsumed match — identical events are
// interchangeable on the path).
func locate(evs []Event, e Event) int {
	for i := range evs {
		if evs[i].Kind == e.Kind && evs[i].Start == e.Start && evs[i].End == e.End &&
			evs[i].Peer == e.Peer && evs[i].Tag == e.Tag && evs[i].Ctx == e.Ctx && evs[i].Bytes == e.Bytes {
			return i
		}
	}
	return -1
}

// Render prints the critical path: the per-kind budget, then each step.
func (cp *CriticalPath) Render(w io.Writer) error {
	if len(cp.Steps) == 0 {
		_, err := fmt.Fprintln(w, "(no activity)")
		return err
	}
	if _, err := fmt.Fprintf(w, "critical path: %d steps, makespan %.6gs\n", len(cp.Steps), float64(cp.Makespan)); err != nil {
		return err
	}
	kinds := make([]Kind, 0, len(cp.ByKind))
	for k := range cp.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		share := 0.0
		if cp.Makespan > 0 {
			share = 100 * float64(cp.ByKind[k]) / float64(cp.Makespan)
		}
		if _, err := fmt.Fprintf(w, "  %-8s %12.6gs  %5.1f%% of makespan\n", k.String(), float64(cp.ByKind[k]), share); err != nil {
			return err
		}
	}
	for _, s := range cp.Steps {
		e := s.Event
		peer := ""
		if e.Peer >= 0 {
			peer = fmt.Sprintf(" peer=%d bytes=%d", e.Peer, e.Bytes)
		}
		if _, err := fmt.Fprintf(w, "  t=[%.6g, %.6g] rank %d %s%s\n",
			float64(e.Start), float64(e.End), e.Rank, e.Kind.String(), peer); err != nil {
			return err
		}
	}
	return nil
}
