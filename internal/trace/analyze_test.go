package trace

import (
	"strings"
	"testing"
)

func TestLinksMatrices(t *testing.T) {
	d := &Data{
		Meta: Meta{NRanks: 3},
		PerRank: [][]Event{
			{
				{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 100, Start: 0, End: 0},
				{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 50, Start: 1, End: 1},
				{Rank: 0, Kind: KindSend, Peer: 2, Bytes: 7, Start: 2, End: 2},
				// Non-send kinds and out-of-range peers must be ignored.
				{Rank: 0, Kind: KindRecv, Peer: 1, Bytes: 999, Start: 3, End: 3},
				{Rank: 0, Kind: KindCompute, Peer: -1, Start: 4, End: 5},
			},
			{{Rank: 1, Kind: KindSend, Peer: 0, Bytes: 10, Start: 0, End: 0}},
			{},
		},
	}
	m := Links(d)
	if m.Bytes[0][1] != 150 || m.Messages[0][1] != 2 {
		t.Errorf("link 0->1 = %d bytes / %d msgs, want 150/2", m.Bytes[0][1], m.Messages[0][1])
	}
	if m.Bytes[0][2] != 7 || m.Messages[0][2] != 1 {
		t.Errorf("link 0->2 = %d/%d", m.Bytes[0][2], m.Messages[0][2])
	}
	if m.Bytes[1][0] != 10 || m.Messages[1][0] != 1 {
		t.Errorf("link 1->0 = %d/%d", m.Bytes[1][0], m.Messages[1][0])
	}
	if m.Bytes[2][0] != 0 && m.Bytes[2][1] != 0 {
		t.Error("idle rank has traffic")
	}
	var sb strings.Builder
	if err := m.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "150") {
		t.Errorf("render missing the 0->1 byte count:\n%s", sb.String())
	}
}

func TestBreakdownMergesOverlaps(t *testing.T) {
	d := &Data{
		Meta: Meta{NRanks: 2},
		PerRank: [][]Event{
			{
				{Rank: 0, Kind: KindCompute, Peer: -1, Start: 0, End: 1},
				// Two overlapping comm intervals: union is [1, 3], 2 s.
				{Rank: 0, Kind: KindSend, Peer: 1, Start: 1, End: 2.5},
				{Rank: 0, Kind: KindRecv, Peer: 1, Start: 1.5, End: 3},
			},
			// Rank 1 sets the makespan to 4 and is otherwise idle.
			{{Rank: 1, Kind: KindCompute, Peer: -1, Start: 3, End: 4}},
		},
	}
	rows := Breakdown(d)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	r0 := rows[0]
	if r0.Compute != 1 || r0.Comm != 2 || r0.Idle != 1 {
		t.Errorf("rank 0 = compute %v comm %v idle %v, want 1/2/1", r0.Compute, r0.Comm, r0.Idle)
	}
	r1 := rows[1]
	if r1.Compute != 1 || r1.Comm != 0 || r1.Idle != 3 {
		t.Errorf("rank 1 = compute %v comm %v idle %v, want 1/0/3", r1.Compute, r1.Comm, r1.Idle)
	}
}

func TestCoveredTime(t *testing.T) {
	cases := []struct {
		ivs  []interval
		want float64
	}{
		{nil, 0},
		{[]interval{{0, 1}}, 1},
		{[]interval{{0, 1}, {2, 3}}, 2},
		{[]interval{{0, 2}, {1, 3}}, 3},
		{[]interval{{1, 3}, {0, 2}, {2, 5}}, 5},
		{[]interval{{0, 1}, {0, 1}}, 1},
	}
	for i, c := range cases {
		if got := coveredTime(append([]interval(nil), c.ivs...)); float64(got) != c.want {
			t.Errorf("case %d: covered = %v, want %v", i, got, c.want)
		}
	}
}

// TestCriticalPathCrossRank builds the classic two-rank chain: rank 0
// computes then sends; rank 1's receive waits on that send, then rank 1
// computes to the makespan. The path must cross ranks through the
// send-recv edge and pick up all four activities.
func TestCriticalPathCrossRank(t *testing.T) {
	d := &Data{
		Meta: Meta{NRanks: 2},
		PerRank: [][]Event{
			{
				{Rank: 0, Kind: KindCompute, Peer: -1, Start: 0, End: 2},
				{Rank: 0, Kind: KindSend, Peer: 1, Tag: 1, Ctx: 1, Bytes: 10, Start: 2, End: 2.5},
			},
			{
				// An early short compute that is NOT on the path.
				{Rank: 1, Kind: KindCompute, Peer: -1, Start: 0, End: 0.5},
				{Rank: 1, Kind: KindRecv, Peer: 0, Tag: 1, Ctx: 1, Bytes: 10, Start: 0.5, End: 2.5},
				{Rank: 1, Kind: KindCompute, Peer: -1, Start: 2.5, End: 4},
			},
		},
	}
	cp := ExtractCriticalPath(d)
	if cp.Makespan != 4 {
		t.Fatalf("makespan = %v, want 4", cp.Makespan)
	}
	kinds := make([]Kind, len(cp.Steps))
	for i, s := range cp.Steps {
		kinds[i] = s.Event.Kind
	}
	want := []Kind{KindCompute, KindSend, KindRecv, KindCompute}
	if len(kinds) != len(want) {
		t.Fatalf("path kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("path kinds = %v, want %v", kinds, want)
		}
	}
	if cp.Steps[0].Event.Rank != 0 || cp.Steps[3].Event.Rank != 1 {
		t.Error("path did not cross ranks through the send-recv edge")
	}
	if cp.ByKind[KindCompute] != 3.5 {
		t.Errorf("compute on path = %v, want 3.5", cp.ByKind[KindCompute])
	}
	var sb strings.Builder
	if err := cp.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "4 steps") {
		t.Errorf("render:\n%s", sb.String())
	}
}

// TestCriticalPathSelfSend guards the cycle guard: a rank that sends to
// itself and then receives it must not loop the walk forever.
func TestCriticalPathSelfSend(t *testing.T) {
	d := &Data{
		Meta: Meta{NRanks: 1},
		PerRank: [][]Event{
			{
				{Rank: 0, Kind: KindSend, Peer: 0, Tag: 1, Ctx: 1, Bytes: 4, Start: 0, End: 0.5},
				{Rank: 0, Kind: KindRecv, Peer: 0, Tag: 1, Ctx: 1, Bytes: 4, Start: 0.5, End: 1},
			},
		},
	}
	cp := ExtractCriticalPath(d)
	if len(cp.Steps) != 2 || cp.Makespan != 1 {
		t.Fatalf("self-send path: %d steps makespan %v", len(cp.Steps), cp.Makespan)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	cp := ExtractCriticalPath(&Data{Meta: Meta{NRanks: 1}, PerRank: [][]Event{{}}})
	if len(cp.Steps) != 0 || cp.Makespan != 0 {
		t.Fatalf("empty path: %+v", cp)
	}
	var sb strings.Builder
	if err := cp.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no activity") {
		t.Errorf("render: %q", sb.String())
	}
}
