package trace

// Compact binary trace format. A trace file is self-contained: it embeds
// the run metadata (cluster, placement, app labels) so hmpitrace can
// analyse it without the live runtime. Layout, all integers little-endian:
//
//	magic   "HMPT"                       4 bytes
//	version u32 (currently 1)
//	metaLen u32, meta JSON               the Meta document
//	nstr    u32, then per string:        event-name string table
//	          len u32, bytes
//	nranks  u32, then per rank:
//	          nev u32, then nev events   fixed 93-byte records
//
// Each event record serialises every Event field in declaration order;
// Name travels as an index into the string table (hot paths set Name only
// to constant strings, so the table stays tiny). Virtual times are
// float64 bit patterns: a write/read round trip is bit-exact, which keeps
// the deterministic-timestamp guarantees of the exporters intact.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/vclock"
)

// vclockTime reconstructs a virtual timestamp from its float64 bit
// pattern, the inverse of the writer's encoding.
func vclockTime(bits int64) vclock.Time {
	return vclock.Time(math.Float64frombits(uint64(bits)))
}

var binaryMagic = [4]byte{'H', 'M', 'P', 'T'}

// binaryVersion is the current format version.
const binaryVersion = 1

// maxBinarySection caps the declared size of variable-length sections so
// a corrupt header cannot drive allocation to gigabytes.
const maxBinarySection = 1 << 30

// WriteBinary serialises the snapshot in the compact binary format.
func WriteBinary(w io.Writer, d *Data) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	i64 := func(v int64) error {
		binary.LittleEndian.PutUint64(scratch[:], uint64(v))
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := u32(binaryVersion); err != nil {
		return err
	}
	meta, err := json.Marshal(&d.Meta)
	if err != nil {
		return err
	}
	if err := u32(uint32(len(meta))); err != nil {
		return err
	}
	if _, err := bw.Write(meta); err != nil {
		return err
	}
	// String table: names in first-appearance order; index 0 is "".
	names := []string{""}
	nameIdx := map[string]uint32{"": 0}
	for _, evs := range d.PerRank {
		for i := range evs {
			if _, ok := nameIdx[evs[i].Name]; !ok {
				nameIdx[evs[i].Name] = uint32(len(names))
				names = append(names, evs[i].Name)
			}
		}
	}
	if err := u32(uint32(len(names))); err != nil {
		return err
	}
	for _, s := range names {
		if err := u32(uint32(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	if err := u32(uint32(len(d.PerRank))); err != nil {
		return err
	}
	for _, evs := range d.PerRank {
		if err := u32(uint32(len(evs))); err != nil {
			return err
		}
		for i := range evs {
			e := &evs[i]
			if err := u32(uint32(e.Rank)); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(e.Kind)); err != nil {
				return err
			}
			if err := u32(uint32(e.Peer)); err != nil {
				return err
			}
			if err := u32(uint32(e.Tag)); err != nil {
				return err
			}
			for _, v := range [...]int64{
				e.Ctx, e.Bytes,
				int64(math.Float64bits(float64(e.Start))),
				int64(math.Float64bits(float64(e.End))),
				e.WallStart, e.WallEnd,
			} {
				if err := i64(v); err != nil {
					return err
				}
			}
			if err := u32(nameIdx[e.Name]); err != nil {
				return err
			}
			for _, v := range [...]int64{e.A0, e.A1, e.A2, e.A3} {
				if err := i64(v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Data, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	i64 := func() (int64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return int64(binary.LittleEndian.Uint64(scratch[:])), nil
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: not a binary trace file (magic %q)", magic[:])
	}
	version, err := u32()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (have %d)", version, binaryVersion)
	}
	metaLen, err := u32()
	if err != nil {
		return nil, err
	}
	if metaLen > maxBinarySection {
		return nil, fmt.Errorf("trace: corrupt meta length %d", metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaBuf); err != nil {
		return nil, err
	}
	d := &Data{}
	if err := json.Unmarshal(metaBuf, &d.Meta); err != nil {
		return nil, fmt.Errorf("trace: corrupt meta: %w", err)
	}
	nstr, err := u32()
	if err != nil {
		return nil, err
	}
	if nstr > maxBinarySection/4 {
		return nil, fmt.Errorf("trace: corrupt string table size %d", nstr)
	}
	names := make([]string, nstr)
	for i := range names {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		if n > maxBinarySection {
			return nil, fmt.Errorf("trace: corrupt string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		names[i] = string(buf)
	}
	nranks, err := u32()
	if err != nil {
		return nil, err
	}
	if nranks > maxBinarySection/4 {
		return nil, fmt.Errorf("trace: corrupt rank count %d", nranks)
	}
	d.PerRank = make([][]Event, nranks)
	for rk := range d.PerRank {
		nev, err := u32()
		if err != nil {
			return nil, err
		}
		if nev > maxBinarySection/8 {
			return nil, fmt.Errorf("trace: corrupt event count %d", nev)
		}
		evs := make([]Event, nev)
		for i := range evs {
			e := &evs[i]
			rank, err := u32()
			if err != nil {
				return nil, err
			}
			e.Rank = int32(rank)
			kind, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			e.Kind = Kind(kind)
			peer, err := u32()
			if err != nil {
				return nil, err
			}
			e.Peer = int32(peer)
			tag, err := u32()
			if err != nil {
				return nil, err
			}
			e.Tag = int32(tag)
			for _, dst := range [...]*int64{&e.Ctx, &e.Bytes} {
				if *dst, err = i64(); err != nil {
					return nil, err
				}
			}
			startBits, err := i64()
			if err != nil {
				return nil, err
			}
			endBits, err := i64()
			if err != nil {
				return nil, err
			}
			e.Start = vclockTime(startBits)
			e.End = vclockTime(endBits)
			for _, dst := range [...]*int64{&e.WallStart, &e.WallEnd} {
				if *dst, err = i64(); err != nil {
					return nil, err
				}
			}
			idx, err := u32()
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(names) {
				return nil, fmt.Errorf("trace: event name index %d outside table of %d", idx, len(names))
			}
			e.Name = names[idx]
			for _, dst := range [...]*int64{&e.A0, &e.A1, &e.A2, &e.A3} {
				if *dst, err = i64(); err != nil {
					return nil, err
				}
			}
		}
		d.PerRank[rk] = evs
	}
	if d.Meta.NRanks == 0 {
		d.Meta.NRanks = int(nranks)
	}
	return d, nil
}

// WriteFile writes the snapshot to path in the binary format.
func (d *Data) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a binary trace from path.
func ReadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
