package trace

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
)

// testData builds a snapshot that exercises every Event field, including
// the awkward values: negative peer, empty and repeated names, float bit
// patterns in aux fields, sub-nanosecond virtual times.
func testData() *Data {
	return &Data{
		Meta: Meta{
			App:       "unit",
			Labels:    map[string]string{"run": "1"},
			NRanks:    2,
			Placement: []int{0, 1},
			Cluster:   json.RawMessage(`{"machines":2}`),
		},
		PerRank: [][]Event{
			{
				{Rank: 0, Kind: KindCompute, Peer: -1, Start: 0, End: 0.1234567890123},
				{Rank: 0, Kind: KindSend, Peer: 1, Tag: 7, Ctx: 42, Bytes: 1000, Start: 0.2, End: 0.2, WallStart: 5, WallEnd: 5},
				{Rank: 0, Kind: KindColl, Peer: -1, Ctx: 1, Bytes: 64, Name: "allreduce/ring", Start: 0.3, End: 0.5, A0: 2},
				{Rank: 0, Kind: KindPredict, Peer: -1, Name: "phase", Start: 0.6, End: 0.6, A0: FloatBits(0.125)},
			},
			{
				{Rank: 1, Kind: KindRecv, Peer: 0, Tag: 7, Ctx: 42, Bytes: 1000, Start: 0.15, End: 0.25},
				{Rank: 1, Kind: KindColl, Peer: -1, Ctx: 1, Bytes: 64, Name: "allreduce/ring", Start: 0.3, End: 0.5, A0: 2},
				{Rank: 1, Kind: KindRegion, Peer: -1, Name: "phase", Start: 0.1, End: 0.9, WallStart: 1, WallEnd: 99},
			},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	d := testData()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.PerRank, d.PerRank) {
		t.Errorf("events changed across round trip:\n got %+v\nwant %+v", got.PerRank, d.PerRank)
	}
	if got.Meta.App != d.Meta.App || got.Meta.NRanks != d.Meta.NRanks {
		t.Errorf("meta changed: %+v", got.Meta)
	}
	if !reflect.DeepEqual(got.Meta.Placement, d.Meta.Placement) {
		t.Errorf("placement changed: %v", got.Meta.Placement)
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	d := testData()
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.PerRank, d.PerRank) {
		t.Error("file round trip changed events")
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, testData()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte (little-endian u32 after the magic)
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, testData()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, n := range []int{3, 8, len(b) / 2, len(b) - 1} {
		if _, err := ReadBinary(bytes.NewReader(b[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	d := &Data{Meta: Meta{NRanks: 1}, PerRank: [][]Event{{}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRanks() != 1 || len(got.PerRank[0]) != 0 {
		t.Fatalf("empty trace round trip: %+v", got)
	}
}
