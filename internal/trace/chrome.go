package trace

// Chrome trace-event JSON exporter: writes the snapshot in the format
// chrome://tracing and Perfetto load directly. Durationful events become
// complete ("X") events, point events become instants ("i"); each rank is
// one thread of one process, named via metadata events.
//
// Output is deterministic for a deterministic simulation: events are the
// stable (Start, Rank) order of Data.Events, struct field order pins the
// JSON field order, and the virtual timeline carries no wall-clock values.

import (
	"encoding/json"
	"fmt"
	"io"
)

// Timeline selects which clock the exported timestamps come from.
type Timeline int

const (
	// TimelineVirtual exports simulated seconds (deterministic).
	TimelineVirtual Timeline = iota
	// TimelineWall exports host nanoseconds since recorder creation (for
	// measuring where the simulation itself spends real time).
	TimelineWall
)

// chromeEvent is one trace-event entry. Field order is the serialised
// order — keep name/cat/ph/ts first so the output diffs well.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Metadata        *Meta         `json:"otherData,omitempty"`
}

// instantKinds are exported as "i" events (no meaningful duration).
func instantKind(k Kind) bool {
	switch k {
	case KindPredict, KindGroupFree, KindRevoke, KindKill:
		return true
	}
	return false
}

// chromeName labels one event in the viewer.
func chromeName(e *Event) string {
	if e.Name != "" {
		return e.Name
	}
	return e.Kind.String()
}

// WriteChrome serialises the snapshot as Chrome trace-event JSON on the
// chosen timeline.
func WriteChrome(w io.Writer, d *Data, tl Timeline) error {
	f := chromeFile{DisplayTimeUnit: "ms"}
	meta := d.Meta
	f.Metadata = &meta
	// Thread naming metadata first, in rank order.
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Cat: "__metadata", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": processName(&meta)},
	})
	for r := 0; r < d.NumRanks(); r++ {
		name := fmt.Sprintf("rank %d", r)
		if meta.Placement != nil && r < len(meta.Placement) {
			name = fmt.Sprintf("rank %d (machine %d)", r, meta.Placement[r])
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: 0, Tid: r,
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range d.Events() {
		ts, dur := timestamps(&e, tl)
		ce := chromeEvent{
			Name: chromeName(&e),
			Cat:  e.Kind.String(),
			Pid:  0,
			Tid:  int(e.Rank),
			Ts:   ts,
			Args: chromeArgs(&e),
		}
		if instantKind(e.Kind) || dur == 0 {
			ce.Ph = "i"
			ce.S = "t"
		} else {
			ce.Ph = "X"
			d := dur
			ce.Dur = &d
		}
		f.TraceEvents = append(f.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// timestamps converts one event to (ts, dur) microseconds on the chosen
// timeline.
func timestamps(e *Event, tl Timeline) (ts, dur float64) {
	if tl == TimelineWall {
		return float64(e.WallStart) / 1e3, float64(e.WallEnd-e.WallStart) / 1e3
	}
	return float64(e.Start) * 1e6, float64(e.End-e.Start) * 1e6
}

// chromeArgs builds the viewer's detail pane for one event. Only
// deterministic values go in (no wall times), so the virtual export is
// byte-stable; encoding/json sorts map keys.
func chromeArgs(e *Event) map[string]any {
	args := map[string]any{}
	if e.Peer >= 0 {
		args["peer"] = int(e.Peer)
	}
	if e.Bytes > 0 {
		args["bytes"] = e.Bytes
	}
	switch e.Kind {
	case KindSend, KindRecv:
		args["tag"] = int(e.Tag)
		args["ctx"] = e.Ctx
	case KindColl:
		args["ctx"] = e.Ctx
	case KindPredict:
		args["predicted_s"] = BitsFloat(e.A0)
	case KindRecon:
		args["speed"] = BitsFloat(e.A0)
	case KindGroupCreate, KindGroupRecreate:
		args["key"] = e.Ctx
		args["predicted_s"] = BitsFloat(e.A0)
		args["evaluations"] = e.A1
		args["cache_hits"] = e.A2
		args["pruned"] = e.A3
	case KindGroupFree, KindRevoke, KindAgree, KindShrink:
		args["ctx"] = e.Ctx
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

func processName(m *Meta) string {
	if m.App != "" {
		return "hmpi: " + m.App
	}
	return "hmpi"
}
