package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Chrome exporter golden files")

// TestChromeGolden pins the virtual-timeline export byte for byte: field
// order, indentation, timestamp formatting. The export of a deterministic
// simulation must be reproducible, so any diff here is either a format
// change (regenerate with -update and review the diff) or a determinism
// regression (fix the code).
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, testData(), TimelineVirtual); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_virtual.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run ChromeGolden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden file %s:\n got:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestChromeDeterministic double-checks the golden property at the source:
// two exports of the same snapshot are identical.
func TestChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	d := testData()
	if err := WriteChrome(&a, d, TimelineVirtual); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, d, TimelineVirtual); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of one snapshot differ")
	}
}

// TestChromeStructure validates the trace-event schema the viewers
// require: parseable JSON, metadata events first, complete events with
// durations, instants with a scope.
func TestChromeStructure(t *testing.T) {
	var buf bytes.Buffer
	d := testData()
	if err := WriteChrome(&buf, d, TimelineVirtual); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	// One process_name plus one thread_name per rank, before any event.
	nmeta := 1 + d.NumRanks()
	if len(f.TraceEvents) != nmeta+len(d.Events()) {
		t.Fatalf("got %d entries, want %d", len(f.TraceEvents), nmeta+len(d.Events()))
	}
	for i := 0; i < nmeta; i++ {
		if f.TraceEvents[i].Ph != "M" {
			t.Fatalf("entry %d is %q, want metadata", i, f.TraceEvents[i].Ph)
		}
	}
	for _, e := range f.TraceEvents[nmeta:] {
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				t.Errorf("complete event %q has no duration", e.Name)
			}
		case "i":
			if e.S == "" {
				t.Errorf("instant %q has no scope", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
}

// TestChromeVirtualOmitsWallClock guards the determinism contract: the
// virtual export must not leak the (non-deterministic) wall-clock fields.
// Two snapshots that differ only in wall times export identically.
func TestChromeVirtualOmitsWallClock(t *testing.T) {
	a, b := testData(), testData()
	for r := range b.PerRank {
		for i := range b.PerRank[r] {
			b.PerRank[r][i].WallStart += 12345
			b.PerRank[r][i].WallEnd += 99999
		}
	}
	var bufA, bufB bytes.Buffer
	if err := WriteChrome(&bufA, a, TimelineVirtual); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&bufB, b, TimelineVirtual); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("wall-clock values leaked into the virtual export")
	}
}
