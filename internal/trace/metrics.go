package trace

// A small metrics registry — counters, gauges, histograms — for
// machine-readable run statistics. hmpirun and hmpibench fill one from
// world statistics and trace data and emit it as JSON, so chaos and bench
// runs can be consumed by scripts instead of scraped from stdout.
//
// Snapshots are deterministic: names are sorted and histograms use fixed
// power-of-two bucket bounds, so two identical simulated runs produce
// byte-identical metric documents.

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Registry holds named metrics. Safe for concurrent use; the zero value
// is not ready, use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// histogram accumulates observations into power-of-two buckets.
type histogram struct {
	counts map[float64]int64 // upper bound -> count (+Inf bucket keyed by -1 in snapshot)
	over   int64             // observations above the largest bound
	sum    float64
	n      int64
}

// histBounds are the fixed histogram bucket upper bounds (inclusive):
// powers of four from 1 to 4^12 ≈ 16.7M, a range that covers both message
// sizes in bytes and durations in microseconds.
var histBounds = func() []float64 {
	var b []float64
	v := 1.0
	for i := 0; i <= 12; i++ {
		b = append(b, v)
		v *= 4
	}
	return b
}()

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Add increments a counter by delta (creating it at zero first).
func (g *Registry) Add(name string, delta int64) {
	g.mu.Lock()
	g.counters[name] += delta
	g.mu.Unlock()
}

// SetGauge sets a gauge to v.
func (g *Registry) SetGauge(name string, v float64) {
	g.mu.Lock()
	g.gauges[name] = v
	g.mu.Unlock()
}

// Observe records one observation into a histogram.
func (g *Registry) Observe(name string, v float64) {
	g.mu.Lock()
	h := g.hists[name]
	if h == nil {
		h = &histogram{counts: make(map[float64]int64)}
		g.hists[name] = h
	}
	placed := false
	for _, b := range histBounds {
		if v <= b {
			h.counts[b]++
			placed = true
			break
		}
	}
	if !placed {
		h.over++
	}
	h.sum += v
	h.n++
	g.mu.Unlock()
}

// Bucket is one histogram bucket in a snapshot. LE is the inclusive
// upper bound; -1 encodes +Inf (the overflow bucket).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is one histogram in a snapshot.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// CounterSnapshot is one counter in a snapshot.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge in a snapshot.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time copy of a registry, ordered for
// deterministic serialisation.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state with sorted names and
// only non-empty buckets.
func (g *Registry) Snapshot() Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	var s Snapshot
	for _, name := range sortedKeys(g.counters) {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: g.counters[name]})
	}
	for _, name := range sortedKeys(g.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.gauges[name]})
	}
	for _, name := range sortedKeys(g.hists) {
		h := g.hists[name]
		hs := HistogramSnapshot{Name: name, Count: h.n, Sum: h.sum}
		for _, b := range histBounds {
			if c := h.counts[b]; c > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{LE: b, Count: c})
			}
		}
		if h.over > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{LE: -1, Count: h.over})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// WriteJSON serialises the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FillFromData populates standard trace-derived metrics: per-kind event
// counters, a message-size histogram over sends, and gauges for makespan
// and drop/unclosed counts.
func (g *Registry) FillFromData(d *Data) {
	for _, evs := range d.PerRank {
		for i := range evs {
			e := &evs[i]
			g.Add("events_"+e.Kind.String()+"_total", 1)
			if e.Kind == KindSend {
				g.Observe("send_bytes", float64(e.Bytes))
			}
		}
	}
	g.SetGauge("trace_makespan_s", float64(d.Makespan()))
	g.Add("trace_dropped_events_total", d.Meta.Dropped)
	g.Add("trace_unclosed_regions_total", d.Meta.Unclosed)
}
