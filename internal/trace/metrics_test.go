package trace

import (
	"bytes"
	"sync"
	"testing"
)

func TestRegistrySnapshotSortedAndDeterministic(t *testing.T) {
	fill := func() *Registry {
		g := NewRegistry()
		g.Add("zebra", 2)
		g.Add("alpha", 1)
		g.SetGauge("g2", 2.5)
		g.SetGauge("g1", 1.5)
		g.Observe("h", 3)   // bucket le=4
		g.Observe("h", 100) // bucket le=256
		g.Observe("h", 1e9) // overflow
		return g
	}
	s := fill().Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zebra" {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 2 || s.Gauges[0].Name != "g1" {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	h := s.Histograms[0]
	if h.Count != 3 || h.Sum != 3+100+1e9 {
		t.Fatalf("histogram = %+v", h)
	}
	if len(h.Buckets) != 3 || h.Buckets[len(h.Buckets)-1].LE != -1 {
		t.Fatalf("buckets = %+v", h.Buckets)
	}
	var a, b bytes.Buffer
	if err := fill().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := fill().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical registries serialised differently")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	g := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add("c", 1)
				g.Observe("h", float64(j))
			}
		}()
	}
	wg.Wait()
	s := g.Snapshot()
	if s.Counters[0].Value != 800 {
		t.Fatalf("counter = %d, want 800", s.Counters[0].Value)
	}
	if s.Histograms[0].Count != 800 {
		t.Fatalf("histogram count = %d, want 800", s.Histograms[0].Count)
	}
}

func TestFillFromData(t *testing.T) {
	d := testData()
	g := NewRegistry()
	g.FillFromData(d)
	s := g.Snapshot()
	get := func(name string) int64 {
		for _, c := range s.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		return -1
	}
	if got := get("events_send_total"); got != 1 {
		t.Errorf("send counter = %d, want 1", got)
	}
	if got := get("events_coll_total"); got != 2 {
		t.Errorf("coll counter = %d, want 2", got)
	}
	var makespan float64
	for _, gg := range s.Gauges {
		if gg.Name == "trace_makespan_s" {
			makespan = gg.Value
		}
	}
	if makespan != float64(d.Makespan()) {
		t.Errorf("makespan gauge = %v, want %v", makespan, d.Makespan())
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Name != "send_bytes" || s.Histograms[0].Count != 1 {
		t.Errorf("send_bytes histogram = %+v", s.Histograms)
	}
}
