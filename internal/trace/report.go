package trace

// The predicted-vs-observed report: the closing of HMPI's central loop.
// HMPI_Timeof predicts an algorithm's execution time from the performance
// model before running it; the recorder captures both the prediction
// (Predict events, emitted where the application consulted the estimator)
// and what then actually happened (Region events around the predicted
// phase). The report joins the two by phase name and prints the model's
// relative error — the quantity the paper's Table A validates, now
// derivable from any recorded run.

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/vclock"
)

// PhaseReport is one named phase's prediction accuracy.
type PhaseReport struct {
	Name string `json:"phase"`
	// Predicted is the summed model forecast for the phase (seconds of
	// virtual time; Predict events add up, so a phase predicted once per
	// attempt accumulates all attempts).
	Predicted float64 `json:"predicted_s"`
	// Observed is the virtual-time span of the phase: latest region end
	// minus earliest region start across all ranks that recorded it.
	Observed float64 `json:"observed_s"`
	// RelError is (observed - predicted) / observed; negative means the
	// model overpredicted.
	RelError float64 `json:"rel_error"`
	// Regions counts the Region events joined into Observed.
	Regions int `json:"regions"`
}

// Report is the full predicted-vs-observed document for one trace.
type Report struct {
	App    string        `json:"app,omitempty"`
	Phases []PhaseReport `json:"phases"`
	// UnmatchedPredictions lists phases predicted but never observed
	// (no Region events recorded under that name).
	UnmatchedPredictions []string `json:"unmatched_predictions,omitempty"`
	// UnmatchedRegions lists phases observed but never predicted.
	UnmatchedRegions []string `json:"unmatched_regions,omitempty"`
}

// BuildReport joins the snapshot's Predict and Region events by phase
// name. Phases appear sorted by name, so the report is deterministic.
func BuildReport(d *Data) *Report {
	type phase struct {
		predicted  float64
		npredicted int
		lo, hi     vclock.Time
		regions    int
	}
	phases := make(map[string]*phase)
	get := func(name string) *phase {
		p := phases[name]
		if p == nil {
			p = &phase{lo: vclock.Time(math.Inf(1)), hi: vclock.Time(math.Inf(-1))}
			phases[name] = p
		}
		return p
	}
	for _, evs := range d.PerRank {
		for i := range evs {
			e := &evs[i]
			switch e.Kind {
			case KindPredict:
				p := get(e.Name)
				p.predicted += BitsFloat(e.A0)
				p.npredicted++
			case KindRegion:
				p := get(e.Name)
				p.regions++
				if e.Start < p.lo {
					p.lo = e.Start
				}
				if e.End > p.hi {
					p.hi = e.End
				}
			}
		}
	}
	rep := &Report{App: d.Meta.App}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := phases[name]
		switch {
		case p.npredicted == 0:
			rep.UnmatchedRegions = append(rep.UnmatchedRegions, name)
		case p.regions == 0:
			rep.UnmatchedPredictions = append(rep.UnmatchedPredictions, name)
		default:
			observed := float64(p.hi - p.lo)
			pr := PhaseReport{
				Name:      name,
				Predicted: p.predicted,
				Observed:  observed,
				Regions:   p.regions,
			}
			if observed != 0 {
				pr.RelError = (observed - p.predicted) / observed
			}
			rep.Phases = append(rep.Phases, pr)
		}
	}
	return rep
}

// MaxAbsRelError returns the largest |RelError| across phases (zero when
// the report has no matched phase).
func (r *Report) MaxAbsRelError() float64 {
	var max float64
	for _, p := range r.Phases {
		if e := math.Abs(p.RelError); e > max {
			max = e
		}
	}
	return max
}

// Render prints the report as an aligned table.
func (r *Report) Render(w io.Writer) error {
	if r.App != "" {
		if _, err := fmt.Fprintf(w, "predicted vs observed — %s\n", r.App); err != nil {
			return err
		}
	}
	if len(r.Phases) == 0 {
		if _, err := fmt.Fprintln(w, "(no phase has both a prediction and an observation)"); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "%-20s %14s %14s %10s %8s\n", "phase", "predicted_s", "observed_s", "rel_err", "regions"); err != nil {
			return err
		}
		for _, p := range r.Phases {
			if _, err := fmt.Fprintf(w, "%-20s %14.6g %14.6g %+9.1f%% %8d\n",
				p.Name, p.Predicted, p.Observed, 100*p.RelError, p.Regions); err != nil {
				return err
			}
		}
	}
	for _, name := range r.UnmatchedPredictions {
		if _, err := fmt.Fprintf(w, "note: phase %q was predicted but never observed\n", name); err != nil {
			return err
		}
	}
	for _, name := range r.UnmatchedRegions {
		if _, err := fmt.Fprintf(w, "note: phase %q was observed but never predicted\n", name); err != nil {
			return err
		}
	}
	return nil
}
