package trace

import (
	"math"
	"strings"
	"testing"
)

func TestBuildReportJoinsByPhase(t *testing.T) {
	d := &Data{
		Meta: Meta{App: "unit", NRanks: 2},
		PerRank: [][]Event{
			{
				{Rank: 0, Kind: KindPredict, Peer: -1, Name: "solve", Start: 0, End: 0, A0: FloatBits(1.0)},
				{Rank: 0, Kind: KindRegion, Peer: -1, Name: "solve", Start: 0, End: 1.0},
				// Predicted but never observed.
				{Rank: 0, Kind: KindPredict, Peer: -1, Name: "ghost", Start: 0, End: 0, A0: FloatBits(2.0)},
			},
			{
				// The observed span is the union across ranks: [0, 1.2].
				{Rank: 1, Kind: KindRegion, Peer: -1, Name: "solve", Start: 0.1, End: 1.2},
				// Observed but never predicted.
				{Rank: 1, Kind: KindRegion, Peer: -1, Name: "setup", Start: 0, End: 0.5},
			},
		},
	}
	rep := BuildReport(d)
	if rep.App != "unit" {
		t.Errorf("app = %q", rep.App)
	}
	if len(rep.Phases) != 1 {
		t.Fatalf("got %d matched phases, want 1: %+v", len(rep.Phases), rep.Phases)
	}
	p := rep.Phases[0]
	if p.Name != "solve" || p.Predicted != 1.0 || p.Regions != 2 {
		t.Fatalf("phase = %+v", p)
	}
	if math.Abs(p.Observed-1.2) > 1e-12 {
		t.Errorf("observed = %v, want 1.2", p.Observed)
	}
	wantRel := (1.2 - 1.0) / 1.2
	if math.Abs(p.RelError-wantRel) > 1e-12 {
		t.Errorf("rel error = %v, want %v", p.RelError, wantRel)
	}
	if len(rep.UnmatchedPredictions) != 1 || rep.UnmatchedPredictions[0] != "ghost" {
		t.Errorf("unmatched predictions = %v", rep.UnmatchedPredictions)
	}
	if len(rep.UnmatchedRegions) != 1 || rep.UnmatchedRegions[0] != "setup" {
		t.Errorf("unmatched regions = %v", rep.UnmatchedRegions)
	}
	if got := rep.MaxAbsRelError(); math.Abs(got-wantRel) > 1e-12 {
		t.Errorf("max abs rel error = %v, want %v", got, wantRel)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"solve", `phase "ghost" was predicted but never observed`, `phase "setup" was observed but never predicted`} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBuildReportAccumulatesPredictions(t *testing.T) {
	d := &Data{
		Meta: Meta{NRanks: 1},
		PerRank: [][]Event{
			{
				{Rank: 0, Kind: KindPredict, Peer: -1, Name: "iter", A0: FloatBits(0.5)},
				{Rank: 0, Kind: KindPredict, Peer: -1, Name: "iter", A0: FloatBits(0.25)},
				{Rank: 0, Kind: KindRegion, Peer: -1, Name: "iter", Start: 0, End: 1},
			},
		},
	}
	rep := BuildReport(d)
	if len(rep.Phases) != 1 || rep.Phases[0].Predicted != 0.75 {
		t.Fatalf("phases = %+v", rep.Phases)
	}
}

func TestBuildReportEmpty(t *testing.T) {
	rep := BuildReport(&Data{Meta: Meta{NRanks: 1}, PerRank: [][]Event{{}}})
	if len(rep.Phases) != 0 || rep.MaxAbsRelError() != 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no phase") {
		t.Errorf("render: %q", sb.String())
	}
}
