// Package trace is the observability subsystem of the HMPI reproduction:
// a low-overhead structured event recorder threaded through the message
// passing library (internal/mpi), the HMPI runtime (internal/hmpi) and the
// fault injector (internal/chaos), plus exporters (Chrome trace-event
// JSON, a compact binary format), trace analyses (per-link traffic
// matrices, per-rank activity breakdown, critical-path extraction over the
// happens-before graph) and a predicted-vs-observed report that replays a
// trace through the cost models of internal/estimator.
//
// Recording model: one shard per world rank, each a fixed-capacity ring of
// Event values. Every event is emitted by the goroutine of the rank it
// describes (simulated processes are goroutine-confined), so each shard
// has exactly one writer and appends without locks; the published count is
// an atomic so concurrent metadata reads see a consistent prefix. When the
// recorder is not attached the instrumentation in mpi/hmpi is a single nil
// check — zero allocations, no atomic traffic.
//
// Ownership rule (see SetBufferPooling in internal/mpi): events never
// retain message payloads. An Event carries the byte count and metadata
// only — structurally, there is no []byte field to alias a pooled buffer —
// so tracing composes with the copy-on-retain buffer pools.
package trace

import (
	"encoding/json"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds. Compute/Send/Recv are the point activity of the simulation
// core; Coll wraps one collective call with its resolved algorithm; Region
// and Predict are application-level phase markers; the rest are runtime
// lifecycle events (group management, Recon, fault tolerance).
const (
	KindCompute Kind = 1 + iota
	KindSend
	KindRecv
	KindColl
	KindRegion
	KindPredict
	KindRecon
	KindGroupCreate
	KindGroupFree
	KindGroupRecreate
	KindRevoke
	KindAgree
	KindShrink
	KindKill
	KindLinkFault
	KindRetransmit
	KindDegrade
	KindIsend
	KindIrecv
	KindWait
	KindTest
)

var kindNames = [...]string{
	KindCompute:       "compute",
	KindSend:          "send",
	KindRecv:          "recv",
	KindColl:          "coll",
	KindRegion:        "region",
	KindPredict:       "predict",
	KindRecon:         "recon",
	KindGroupCreate:   "group_create",
	KindGroupFree:     "group_free",
	KindGroupRecreate: "group_recreate",
	KindRevoke:        "revoke",
	KindAgree:         "agree",
	KindShrink:        "shrink",
	KindKill:          "kill",
	KindLinkFault:     "link_fault_injected",
	KindRetransmit:    "retransmit",
	KindDegrade:       "degrade_reselect",
	KindIsend:         "isend",
	KindIrecv:         "irecv",
	KindWait:          "wait",
	KindTest:          "test",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded occurrence on one rank. Fixed-size except for
// Name, which hot paths set only to constant strings (no per-event
// formatting, no allocation). Aux fields A0..A3 carry kind-specific
// values; see the emitting sites. Payload bytes are counted, never
// referenced.
type Event struct {
	Rank  int32
	Kind  Kind
	Peer  int32 // partner world rank, -1 when not applicable
	Tag   int32
	Ctx   int64 // communicator context id or group key
	Bytes int64
	Start vclock.Time
	End   vclock.Time
	// WallStart/WallEnd are host nanoseconds since the recorder was
	// created: the wall-clock timeline, for measuring simulation overhead
	// (the virtual timeline is deterministic; the wall one is not).
	WallStart int64
	WallEnd   int64
	Name      string
	A0        int64
	A1        int64
	A2        int64
	A3        int64
}

// FloatBits packs a float64 into an aux field.
func FloatBits(f float64) int64 { return int64(math.Float64bits(f)) }

// BitsFloat unpacks an aux field written with FloatBits.
func BitsFloat(v int64) float64 { return math.Float64frombits(uint64(v)) }

// Options tune a Recorder.
type Options struct {
	// ShardCap is the number of events retained per rank; older events
	// are overwritten and counted as dropped. Zero means the default
	// (16384 events/rank).
	ShardCap int
}

const defaultShardCap = 1 << 14

// Meta describes a recorded run: enough context to analyse the trace
// without the live runtime (the binary format embeds it, so a trace file
// is self-contained).
type Meta struct {
	App       string            `json:"app,omitempty"`
	Labels    map[string]string `json:"labels,omitempty"`
	NRanks    int               `json:"nranks"`
	Placement []int             `json:"placement,omitempty"` // world rank -> machine index
	Cluster   json.RawMessage   `json:"cluster,omitempty"`   // hnoc.Cluster JSON
	Dropped   int64             `json:"dropped,omitempty"`
	Unclosed  int64             `json:"unclosed_regions,omitempty"`
	// Pending holds the blocking operations still in flight when the
	// snapshot was taken. A run that completed cleanly has none; a run
	// cut short by a deadlock or a hang freezes its wait state here,
	// which is what lets hmpiverify diagnose cycles a finished-events
	// trace cannot show.
	Pending []PendingOp `json:"pending,omitempty"`
}

// PendingOp is one blocking operation that had begun but not completed
// when the trace was snapshotted.
type PendingOp struct {
	Rank int    `json:"rank"`
	Kind string `json:"kind"` // "recv", "coll", ...
	Peer int    `json:"peer"` // awaited world rank, -1 for AnySource
	Tag  int    `json:"tag"`
	Ctx  int64  `json:"ctx"`
	// AnySrc marks a receive posted with AnySource (Peer then records
	// -1, not a resolved sender).
	AnySrc bool `json:"any_src,omitempty"`
	// Since is the virtual time the wait began.
	Since float64 `json:"since"`
}

// regionFrame is one open Region on a rank's stack.
type regionFrame struct {
	name  string
	start vclock.Time
	wall  int64
}

// shard is the per-rank ring buffer. Single writer (the rank's own
// goroutine); n is atomic so post-run readers and metric snapshots load a
// published count.
type shard struct {
	events  []Event
	n       atomic.Int64 // total emitted (monotone; retained = min(n, cap))
	regions []regionFrame
	badEnds atomic.Int64 // RegionEnd calls with no matching begin
	// pending is the rank's stack of in-flight blocking operations,
	// fixed-size so PendingBegin never allocates on the hot path. Writes
	// follow the slot-then-count publication pattern: npending is stored
	// after the slot, so a reader that acquire-loads the count sees
	// fully written entries.
	pending  [4]PendingOp
	npending atomic.Int32
}

// Recorder collects events for every rank of one world. Create with
// NewRecorder, attach via mpi.World.SetRecorder (or the runtime helpers),
// read after the run with Data.
type Recorder struct {
	start  time.Time
	shards []shard
	meta   Meta
}

// NewRecorder creates a recorder for nranks ranks.
func NewRecorder(nranks int, opts Options) *Recorder {
	cap := opts.ShardCap
	if cap <= 0 {
		cap = defaultShardCap
	}
	r := &Recorder{start: time.Now(), shards: make([]shard, nranks)}
	r.meta.NRanks = nranks
	for i := range r.shards {
		r.shards[i].events = make([]Event, cap)
		r.shards[i].regions = make([]regionFrame, 0, 8)
	}
	return r
}

// NumRanks returns the number of shards.
func (r *Recorder) NumRanks() int { return len(r.shards) }

// NowNS returns host nanoseconds since the recorder was created, the
// wall-clock timeline of WallStart/WallEnd.
func (r *Recorder) NowNS() int64 { return time.Since(r.start).Nanoseconds() }

// Emit records one event on rank's shard. Must be called from the
// goroutine owning that rank (the simulation confines each rank to one
// goroutine, so every instrumentation site satisfies this for free).
func (r *Recorder) Emit(rank int, e Event) {
	s := &r.shards[rank]
	n := s.n.Load()
	s.events[n%int64(len(s.events))] = e
	s.n.Store(n + 1)
}

// RegionBegin opens a named application phase on rank at virtual time
// now. Regions nest; each begin must be matched by a RegionEnd with the
// same name on the same rank (the hmpivet `tracescope` analyzer flags
// functions that begin a region without ending it).
func (r *Recorder) RegionBegin(rank int, name string, now vclock.Time) {
	s := &r.shards[rank]
	s.regions = append(s.regions, regionFrame{name: name, start: now, wall: r.NowNS()})
}

// RegionEnd closes the innermost open region with the given name on rank
// and emits the Region event. An end with no matching begin is counted
// (see Meta.Unclosed for begins left open) and otherwise ignored.
func (r *Recorder) RegionEnd(rank int, name string, now vclock.Time) {
	s := &r.shards[rank]
	for i := len(s.regions) - 1; i >= 0; i-- {
		if s.regions[i].name != name {
			continue
		}
		f := s.regions[i]
		s.regions = append(s.regions[:i], s.regions[i+1:]...)
		r.Emit(rank, Event{
			Rank: int32(rank), Kind: KindRegion, Peer: -1, Name: name,
			Start: f.start, End: now, WallStart: f.wall, WallEnd: r.NowNS(),
		})
		return
	}
	s.badEnds.Add(1)
}

// Predict records a prediction event: the model's forecast (seconds of
// virtual time) for one occurrence of the named phase. The report matches
// it against the observed durations of Region events with the same name.
func (r *Recorder) Predict(rank int, name string, seconds float64, now vclock.Time) {
	r.Emit(rank, Event{
		Rank: int32(rank), Kind: KindPredict, Peer: -1, Name: name,
		Start: now, End: now, WallStart: r.NowNS(), WallEnd: r.NowNS(),
		A0: FloatBits(seconds),
	})
}

// PendingBegin pushes a blocking operation onto rank's in-flight stack.
// Must be called from the goroutine owning the rank, like Emit. Depth
// beyond the fixed capacity is dropped silently (blocking operations do
// not nest that deep; the stack exists for post-mortem diagnosis, not
// accounting).
func (r *Recorder) PendingBegin(rank int, op PendingOp) {
	s := &r.shards[rank]
	n := s.npending.Load()
	if int(n) >= len(s.pending) {
		return
	}
	op.Rank = rank
	s.pending[n] = op
	s.npending.Store(n + 1)
}

// PendingEnd pops the most recent in-flight operation of rank: the
// blocking call completed (or aborted).
func (r *Recorder) PendingEnd(rank int) {
	s := &r.shards[rank]
	if n := s.npending.Load(); n > 0 {
		s.npending.Store(n - 1)
	}
}

// PendingOps snapshots the in-flight blocking operations across all
// ranks, ordered by rank. Safe to call while ranks are blocked (that is
// the point): the count publication makes each entry's prefix
// consistent.
func (r *Recorder) PendingOps() []PendingOp {
	var out []PendingOp
	for i := range r.shards {
		s := &r.shards[i]
		n := int(s.npending.Load())
		for k := 0; k < n && k < len(s.pending); k++ {
			out = append(out, s.pending[k])
		}
	}
	return out
}

// SetMeta replaces the descriptive metadata attached to exported traces.
// Call before or after the run, not concurrently with Data.
func (r *Recorder) SetMeta(m Meta) {
	if m.NRanks == 0 {
		m.NRanks = len(r.shards)
	}
	r.meta = m
}

// Meta returns the recorder's current metadata (without the run counters
// Data fills in).
func (r *Recorder) Meta() Meta { return r.meta }

// Dropped returns the number of events lost to ring overwrites so far.
func (r *Recorder) Dropped() int64 {
	var d int64
	for i := range r.shards {
		s := &r.shards[i]
		if n, c := s.n.Load(), int64(len(s.events)); n > c {
			d += n - c
		}
	}
	return d
}

// RankEvents returns a copy of rank's retained events in emission order
// (oldest retained first). Call after the run.
func (r *Recorder) RankEvents(rank int) []Event {
	s := &r.shards[rank]
	n := s.n.Load()
	c := int64(len(s.events))
	if n <= c {
		return append([]Event(nil), s.events[:n]...)
	}
	// Ring wrapped: oldest retained event sits at n % cap.
	out := make([]Event, 0, c)
	head := n % c
	out = append(out, s.events[head:]...)
	return append(out, s.events[:head]...)
}

// Data snapshots the recorder into an analysable, exportable form. Call
// after the run completes (concurrent emission would race on slot
// contents).
func (r *Recorder) Data() *Data {
	d := &Data{Meta: r.meta, PerRank: make([][]Event, len(r.shards))}
	d.Meta.NRanks = len(r.shards)
	for i := range r.shards {
		d.PerRank[i] = r.RankEvents(i)
		d.Meta.Unclosed += int64(len(r.shards[i].regions))
	}
	d.Meta.Dropped = r.Dropped()
	d.Meta.Pending = r.PendingOps()
	return d
}

// Data is a snapshot of a recorded run: metadata plus per-rank events in
// emission order. It is what the exporters write and the analyses read.
type Data struct {
	Meta    Meta
	PerRank [][]Event
}

// NumRanks returns the number of ranks in the snapshot.
func (d *Data) NumRanks() int { return len(d.PerRank) }

// EachEvent calls fn for every event, rank-major in per-rank emission
// order, stopping early when fn returns false. It is the iteration hook
// external consumers (the hmpiverify replayer) use, so they need no
// knowledge of the PerRank layout.
func (d *Data) EachEvent(fn func(rank int, e Event) bool) {
	for rank, evs := range d.PerRank {
		for i := range evs {
			if !fn(rank, evs[i]) {
				return
			}
		}
	}
}

// Events returns all events merged across ranks, sorted by virtual start
// time with rank as the tie-break and per-rank emission order preserved —
// a deterministic order for a deterministic simulation, which is what
// makes the Chrome export golden-testable.
func (d *Data) Events() []Event {
	var total int
	for _, evs := range d.PerRank {
		total += len(evs)
	}
	out := make([]Event, 0, total)
	for _, evs := range d.PerRank {
		out = append(out, evs...)
	}
	stableSortEvents(out)
	return out
}

// Makespan returns the maximum event end time in the snapshot.
func (d *Data) Makespan() vclock.Time {
	var max vclock.Time
	for _, evs := range d.PerRank {
		for i := range evs {
			if evs[i].End > max {
				max = evs[i].End
			}
		}
	}
	return max
}

// stableSortEvents sorts by (Start, Rank) keeping equal elements in
// emission order, so the merged stream is deterministic whenever the
// simulation is.
func stableSortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].Rank < evs[j].Rank
	})
}
