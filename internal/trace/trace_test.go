package trace

import (
	"testing"

	"repro/internal/vclock"
)

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(1, Options{ShardCap: 4})
	for i := 0; i < 10; i++ {
		r.Emit(0, Event{Rank: 0, Kind: KindCompute, Peer: -1, Start: vclock.Time(i), End: vclock.Time(i) + 1})
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := r.RankEvents(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest retained first: events 6..9.
	for i, e := range evs {
		if want := vclock.Time(6 + i); e.Start != want {
			t.Errorf("event %d start = %v, want %v", i, e.Start, want)
		}
	}
	if d := r.Data(); d.Meta.Dropped != 6 {
		t.Fatalf("Data dropped = %d, want 6", d.Meta.Dropped)
	}
}

func TestRecorderNoWrap(t *testing.T) {
	r := NewRecorder(2, Options{ShardCap: 8})
	r.Emit(1, Event{Rank: 1, Kind: KindSend, Peer: 0, Start: 1, End: 2})
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	if evs := r.RankEvents(0); len(evs) != 0 {
		t.Fatalf("rank 0 has %d events, want 0", len(evs))
	}
	evs := r.RankEvents(1)
	if len(evs) != 1 || evs[0].Kind != KindSend {
		t.Fatalf("rank 1 events = %+v", evs)
	}
}

func TestRegionsNestAndMatchByName(t *testing.T) {
	r := NewRecorder(1, Options{})
	r.RegionBegin(0, "outer", 0)
	r.RegionBegin(0, "inner", 1)
	r.RegionEnd(0, "inner", 2)
	r.RegionEnd(0, "outer", 3)
	evs := r.RankEvents(0)
	if len(evs) != 2 {
		t.Fatalf("got %d region events, want 2", len(evs))
	}
	// Ends emit in closing order: inner first.
	if evs[0].Name != "inner" || evs[0].Start != 1 || evs[0].End != 2 {
		t.Errorf("inner region = %+v", evs[0])
	}
	if evs[1].Name != "outer" || evs[1].Start != 0 || evs[1].End != 3 {
		t.Errorf("outer region = %+v", evs[1])
	}
	if d := r.Data(); d.Meta.Unclosed != 0 {
		t.Fatalf("unclosed = %d, want 0", d.Meta.Unclosed)
	}
}

func TestRegionEndWithoutBeginIgnored(t *testing.T) {
	r := NewRecorder(1, Options{})
	r.RegionEnd(0, "ghost", 1)
	if evs := r.RankEvents(0); len(evs) != 0 {
		t.Fatalf("bad end emitted %d events", len(evs))
	}
	// An unmatched begin is surfaced through the snapshot metadata.
	r.RegionBegin(0, "open", 2)
	if d := r.Data(); d.Meta.Unclosed != 1 {
		t.Fatalf("unclosed = %d, want 1", d.Meta.Unclosed)
	}
}

func TestPredictRoundTrip(t *testing.T) {
	r := NewRecorder(1, Options{})
	r.Predict(0, "phase", 0.125, 3)
	evs := r.RankEvents(0)
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	e := evs[0]
	if e.Kind != KindPredict || e.Name != "phase" || e.Start != 3 || e.End != 3 {
		t.Fatalf("predict event = %+v", e)
	}
	if got := BitsFloat(e.A0); got != 0.125 {
		t.Fatalf("predicted = %v, want 0.125", got)
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 0.1, 1e-300, 1e300, -3.75} {
		if got := BitsFloat(FloatBits(f)); got != f {
			t.Errorf("round trip of %v = %v", f, got)
		}
	}
}

func TestDataEventsMergeOrder(t *testing.T) {
	r := NewRecorder(3, Options{})
	// Same start on ranks 2 and 0: rank is the tie-break.
	r.Emit(2, Event{Rank: 2, Kind: KindCompute, Peer: -1, Start: 1, End: 2})
	r.Emit(0, Event{Rank: 0, Kind: KindCompute, Peer: -1, Start: 1, End: 3})
	r.Emit(1, Event{Rank: 1, Kind: KindCompute, Peer: -1, Start: 0, End: 1})
	evs := r.Data().Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Rank != 1 || evs[1].Rank != 0 || evs[2].Rank != 2 {
		t.Fatalf("merge order ranks = %d,%d,%d, want 1,0,2", evs[0].Rank, evs[1].Rank, evs[2].Rank)
	}
	if got := r.Data().Makespan(); got != 3 {
		t.Fatalf("makespan = %v, want 3", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindCompute; k <= KindKill; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Error("out-of-range kinds must stringify as unknown")
	}
}
