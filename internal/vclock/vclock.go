// Package vclock provides the virtual-time primitives used by the simulated
// execution of message-passing programs on a heterogeneous network of
// computers.
//
// Every simulated process owns a Clock. Computation advances the clock of
// the computing process only; communication transfers a timestamp from the
// sender to the receiver, so clocks stay causally consistent without a
// global event queue: two clocks can only interact through a message, and a
// message carries the sender's time of emission.
//
// The package also provides NIC bookkeeping (a serial resource modelling a
// network interface: a host transmits one message at a time even when the
// switch lets distinct host pairs communicate in parallel) and helpers to
// integrate computation time under a time-varying external load.
package vclock

import "fmt"

// Time is virtual time in seconds since the start of the simulated run.
type Time float64

// Clock is the virtual clock of one simulated process. The zero value is a
// clock at time zero, ready to use. Clock is not safe for concurrent use;
// each simulated process owns exactly one.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d seconds. Negative d panics: virtual
// time never runs backwards.
func (c *Clock) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.now += d
}

// AbsorbAtLeast moves the clock to t if t is in the clock's future. It is
// used when receiving a message stamped with its arrival time: the receiver
// cannot have observed the message before it arrived.
func (c *Clock) AbsorbAtLeast(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Set forces the clock to t. It is used only when re-initialising a process
// between runs.
func (c *Clock) Set(t Time) { c.now = t }

// NIC models a serial transmission resource: a network interface that can
// carry one message at a time. Busy time accumulates even when the owner's
// clock has moved past it (the interface transmits in the background, e.g.
// during a non-blocking send).
type NIC struct {
	freeAt Time
}

// Reserve books the interface for a transfer of the given duration starting
// no earlier than t, and returns the interval [start, end) of the transfer.
func (n *NIC) Reserve(t Time, duration Time) (start, end Time) {
	if duration < 0 {
		panic(fmt.Sprintf("vclock: negative transfer duration %v", duration))
	}
	start = t
	if n.freeAt > start {
		start = n.freeAt
	}
	end = start + duration
	n.freeAt = end
	return start, end
}

// FreeAt reports when the interface next becomes idle.
func (n *NIC) FreeAt() Time { return n.freeAt }

// Reset makes the interface idle at time zero.
func (n *NIC) Reset() { n.freeAt = 0 }
