package vclock

import (
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(0)
	c.Advance(2.5)
	if got := c.Now(); got != 4.0 {
		t.Fatalf("clock = %v, want 4.0", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestAbsorbAtLeast(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.AbsorbAtLeast(5) // in the past: no effect
	if c.Now() != 10 {
		t.Fatalf("absorbing past time moved clock to %v", c.Now())
	}
	c.AbsorbAtLeast(12)
	if c.Now() != 12 {
		t.Fatalf("absorbing future time gave %v, want 12", c.Now())
	}
}

func TestClockSet(t *testing.T) {
	var c Clock
	c.Advance(3)
	c.Set(0)
	if c.Now() != 0 {
		t.Fatalf("Set(0) gave %v", c.Now())
	}
}

func TestNICSerialisesTransfers(t *testing.T) {
	var n NIC
	s1, e1 := n.Reserve(0, 2)
	if s1 != 0 || e1 != 2 {
		t.Fatalf("first transfer scheduled [%v,%v), want [0,2)", s1, e1)
	}
	// Requested at time 1, but the NIC is busy until 2.
	s2, e2 := n.Reserve(1, 3)
	if s2 != 2 || e2 != 5 {
		t.Fatalf("second transfer scheduled [%v,%v), want [2,5)", s2, e2)
	}
	// Requested after the NIC went idle: starts immediately.
	s3, e3 := n.Reserve(10, 1)
	if s3 != 10 || e3 != 11 {
		t.Fatalf("third transfer scheduled [%v,%v), want [10,11)", s3, e3)
	}
	if n.FreeAt() != 11 {
		t.Fatalf("FreeAt = %v, want 11", n.FreeAt())
	}
}

func TestNICReset(t *testing.T) {
	var n NIC
	n.Reserve(0, 5)
	n.Reset()
	if n.FreeAt() != 0 {
		t.Fatalf("after Reset FreeAt = %v", n.FreeAt())
	}
}

func TestNICNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reserve with negative duration did not panic")
		}
	}()
	var n NIC
	n.Reserve(0, -1)
}

// Property: a NIC never schedules a transfer to start before it was
// requested, never overlaps transfers, and FreeAt is non-decreasing.
func TestNICReservationInvariants(t *testing.T) {
	f := func(reqs []struct {
		At  uint16
		Dur uint16
	}) bool {
		var n NIC
		prevEnd := Time(0)
		for _, r := range reqs {
			at := Time(r.At)
			dur := Time(r.Dur) / 16
			start, end := n.Reserve(at, dur)
			if start < at || start < prevEnd {
				return false
			}
			if end != start+dur {
				return false
			}
			if n.FreeAt() != end {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
