package verify_test

// End-to-end: record real runs of the HMPI runtime — a clean
// model-selected group and a chaos run with a mid-work failure and ULFM
// recovery — and check that the verifier finds nothing wrong with
// either. These are the acceptance runs: the verifier must stay silent
// on correct executions, recreates included, or its violations mean
// nothing.

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps/em3d"
	"repro/internal/hmpi"
	"repro/internal/hnoc"
	"repro/internal/mpi"
	"repro/internal/pmdl"
	"repro/internal/trace"
	"repro/internal/verify"
)

// ringModelSrc is the small irregular model the hmpi tests use: p
// processors exchanging boundary data in a ring.
const ringModelSrc = `
algorithm Ring(int p, int v[p], int b) {
  coord I=p;
  link (L=p) {
    I>=0 && ((L+1) % p == I) : length*(b*sizeof(double)) [L]->[I];
  };
  node {I>=0: bench*(v[I]);};
  parent[0];
  scheme {
    int i, l;
    par (i = 0; i < p; i++)
      par (l = 0; l < p; l++)
        if ((l+1) % p == i) 100%%[l]->[i];
    par (i = 0; i < p; i++) 100%%[i];
  };
}
`

func ringModel(t *testing.T) *pmdl.Model {
	t.Helper()
	m, err := pmdl.ParseModel(ringModelSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runWithTimeout guards against hangs in failure paths.
func runWithTimeout(t *testing.T, rt *hmpi.Runtime, d time.Duration, main func(h *hmpi.Process) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- rt.Run(main) }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("runtime did not finish within %v", d)
		return nil
	}
}

// count tallies events of one kind across the snapshot.
func count(d *trace.Data, k trace.Kind) int {
	n := 0
	d.EachEvent(func(_ int, e trace.Event) bool {
		if e.Kind == k {
			n++
		}
		return true
	})
	return n
}

func TestE2ECleanRunVerifies(t *testing.T) {
	rt, err := hmpi.New(hmpi.Config{Cluster: hnoc.Homogeneous(4, 10)})
	if err != nil {
		t.Fatal(err)
	}
	model := ringModel(t)
	rec := rt.EnableRecorder("verify-e2e-clean", trace.Options{})
	err = runWithTimeout(t, rt, 30*time.Second, func(h *hmpi.Process) error {
		return h.RunResilient(hmpi.FixedPlan(model, 3, []int{1, 1, 1}, 1), func(g *hmpi.Group) error {
			comm := g.Comm()
			sum := comm.Allreduce([]byte{1}, func(inout, in []byte) { inout[0] += in[0] })
			_ = sum
			// A directed exchange on top of the collective, so the trace
			// has application point-to-point traffic to match too.
			me := g.Rank()
			next := (me + 1) % g.Size()
			prev := (me - 1 + g.Size()) % g.Size()
			data, _ := comm.Sendrecv(next, 30, []byte{byte(me)}, prev, 30)
			if data[0] != byte(prev) {
				t.Errorf("ring exchange corrupted: got %d, want %d", data[0], prev)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rec.Data()
	if count(d, trace.KindGroupCreate) == 0 {
		t.Fatal("trace has no group_create; the run exercised nothing")
	}
	rep, err := verify.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("clean run produced violations:\n%v", v)
	}
}

func TestE2EChaosRecreateVerifies(t *testing.T) {
	rt, err := hmpi.New(hmpi.Config{Cluster: hnoc.Homogeneous(5, 10)})
	if err != nil {
		t.Fatal(err)
	}
	model := ringModel(t)
	rec := rt.EnableRecorder("verify-e2e-chaos", trace.Options{})
	var killed atomic.Bool
	err = runWithTimeout(t, rt, 60*time.Second, func(h *hmpi.Process) error {
		return h.RunResilient(hmpi.FixedPlan(model, 3, []int{1, 1, 1}, 1), func(g *hmpi.Group) error {
			if h.Rank() != hmpi.HostRank && killed.CompareAndSwap(false, true) {
				// Record the kill the way the chaos engine does, so the
				// verifier can excuse the victim's unfinished business.
				rt.World().RecordKill(h.Rank(), h.Proc().Now())
				rt.InjectFailure(h.Rank())
				panic(&mpi.KilledError{Rank: h.Rank()})
			}
			sum := g.Comm().Allreduce([]byte{1}, func(inout, in []byte) { inout[0] += in[0] })
			_ = sum
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rec.Data()
	if count(d, trace.KindKill) == 0 || count(d, trace.KindGroupRecreate) == 0 {
		t.Fatal("trace shows no kill/recreate; the chaos path did not run")
	}
	// The recreate dissolved the old group and the run freed the new one:
	// lifecycle accounting must balance, and nothing else may fire either.
	rep, err := verify.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("chaos run with recovery produced violations:\n%v", v)
	}
}

// TestE2EOverlapRunVerifies records a real overlapped EM3D run — Irecvs
// posted early, interior compute, waits, pipelined Isends — and checks
// that every traced request lifecycle closes: the requests check must
// stay silent on the overlap schedule, and nothing else may fire.
func TestE2EOverlapRunVerifies(t *testing.T) {
	rt, err := hmpi.New(hmpi.Config{Cluster: hnoc.Paper9()})
	if err != nil {
		t.Fatal(err)
	}
	rec := rt.EnableRecorder("verify-e2e-overlap", trace.Options{})
	pr, err := em3d.Generate(em3d.Config{P: 5, TotalNodes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em3d.RunHMPI(rt, pr, em3d.RunOptions{Iters: 3, RealMath: true, Overlap: true}); err != nil {
		t.Fatal(err)
	}
	d := rec.Data()
	if count(d, trace.KindIrecv) == 0 || count(d, trace.KindIsend) == 0 || count(d, trace.KindWait) == 0 {
		t.Fatalf("trace shows no request lifecycle events (irecv=%d isend=%d wait=%d); the overlap path did not run",
			count(d, trace.KindIrecv), count(d, trace.KindIsend), count(d, trace.KindWait))
	}
	rep, err := verify.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("overlapped run produced violations:\n%v", v)
	}
}

// TestE2ENonblockingCollectivesVerify drives Ibcast and Iallreduce with
// compute between post and wait and checks the trace verifies clean —
// including the posting-order KindColl entries feeding the collseq check.
func TestE2ENonblockingCollectivesVerify(t *testing.T) {
	rt, err := hmpi.New(hmpi.Config{Cluster: hnoc.Homogeneous(4, 10)})
	if err != nil {
		t.Fatal(err)
	}
	rec := rt.EnableRecorder("verify-e2e-nbcoll", trace.Options{})
	err = runWithTimeout(t, rt, 30*time.Second, func(h *hmpi.Process) error {
		comm := h.CommWorld()
		rb := comm.Ibcast(0, []byte{7, 7})
		h.Proc().Compute(50)
		if got, _ := rb.Wait(); got[0] != 7 {
			t.Errorf("ibcast delivered %v", got)
		}
		ra := comm.Iallreduce([]byte{1}, func(inout, in []byte) { inout[0] += in[0] })
		h.Proc().Compute(50)
		if got, _ := ra.Wait(); got[0] != byte(comm.Size()) {
			t.Errorf("iallreduce delivered %v, want %d", got, comm.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Run(rec.Data())
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("nonblocking collectives produced violations:\n%v", v)
	}
}
