// Package verify replays a recorded HMPT trace and checks that the run
// it describes respected the semantics of the message-passing model: no
// phantom or lost messages, no deadlocked wait cycle, collective
// sequences consistent across the members of each communicator, every
// created group eventually dissolved, and wildcard receives free of
// message races. It is the dynamic counterpart of the hmpivet static
// analyzers: hmpivet proves properties of the source, hmpiverify checks
// the same contracts against what one execution actually did.
//
// The verifier is a pure consumer of the trace package: it never needs
// the live runtime, so it can run over a trace file produced on another
// machine (or by a run that deadlocked and was snapshotted mid-flight,
// which is where the wait-for-graph check earns its keep).
package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Mirrors of the mpi package's wildcard constants. Defined here rather
// than imported so the verifier depends only on the trace format, never
// on the runtime.
const (
	anySource = -1
	anyTag    = -1
)

// Severity ranks a finding. Only Violation affects the exit status of
// hmpiverify; Warning flags conditions that weaken the verification
// (dropped events, operations still pending at snapshot), and Info
// reports observations (message races) that are legal but worth eyes.
type Severity int

const (
	Info Severity = iota
	Warning
	Violation
)

func (s Severity) String() string {
	switch s {
	case Violation:
		return "violation"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalText makes severities readable in -json output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Finding is one verifier result.
type Finding struct {
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	// Rank is the world rank the finding is about, -1 when it concerns
	// the whole run.
	Rank    int    `json:"rank"`
	Ctx     int64  `json:"ctx,omitempty"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s: %s", f.Severity, f.Check, f.Message)
	return b.String()
}

// Report collects the findings of one verification run.
type Report struct {
	Findings []Finding
	// Ran lists the checks that executed, in AllChecks order.
	Ran []string
}

// Violations returns the findings that make the run invalid.
func (r *Report) Violations() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == Violation {
			out = append(out, f)
		}
	}
	return out
}

func (r *Report) add(check string, sev Severity, rank int, ctx int64, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Check: check, Severity: sev, Rank: rank, Ctx: ctx,
		Message: fmt.Sprintf(format, args...),
	})
}

// AllChecks names every check Run knows, in execution order.
var AllChecks = []string{"matching", "deadlock", "collseq", "groups", "races", "requests"}

// Run verifies the snapshot. With no explicit checks every check runs;
// otherwise only the named ones (an unknown name is an error, matching
// the hmpivet -only contract).
func Run(d *trace.Data, checks ...string) (*Report, error) {
	want := map[string]bool{}
	if len(checks) == 0 {
		for _, c := range AllChecks {
			want[c] = true
		}
	} else {
		known := map[string]bool{}
		for _, c := range AllChecks {
			known[c] = true
		}
		for _, c := range checks {
			c = strings.TrimSpace(c)
			if !known[c] {
				return nil, fmt.Errorf("unknown check %q (have %s)", c, strings.Join(AllChecks, ", "))
			}
			want[c] = true
		}
	}

	rep := &Report{}
	for _, c := range AllChecks {
		if want[c] {
			rep.Ran = append(rep.Ran, c)
		}
	}

	st := replay(d)

	// A ring that overwrote events cannot support message-level
	// accounting: a "phantom" receive may simply have lost its send to
	// the overwrite. The structural checks still run, downgraded.
	sound := st.dropped == 0
	if !sound {
		rep.add("matching", Warning, -1, 0,
			"%d events were dropped from the recording ring; message-level checks are skipped and lifecycle findings downgraded", st.dropped)
	}
	if d.Meta.Unclosed > 0 {
		rep.add("matching", Warning, -1, 0, "%d trace regions were never closed", d.Meta.Unclosed)
	}

	if want["matching"] && sound {
		st.checkMatching(rep)
	}
	if want["deadlock"] {
		st.checkDeadlock(rep)
	}
	if want["collseq"] && sound {
		st.checkCollSeq(rep)
	}
	if want["groups"] {
		st.checkGroups(rep, sound)
	}
	if want["races"] && sound {
		st.checkRaces(rep)
	}
	if want["requests"] && sound {
		st.checkRequests(rep)
	}
	return rep, nil
}

// msgKey identifies one FIFO message channel: the non-overtaking
// guarantee holds per (communicator, sender, receiver, tag).
type msgKey struct {
	ctx      int64
	src, dst int
	tag      int
}

// sendRec is one sent message awaiting its receive during replay.
type sendRec struct {
	bytes int64
}

// raceKey aggregates wildcard-race observations per receive site.
type raceKey struct {
	ctx int64
	dst int
	tag int
}

// state is the replayed view of the run.
type state struct {
	nranks  int
	dropped int64
	killed  map[int]bool
	revoked map[int64]bool
	// queues holds sent-but-not-yet-received messages in send order.
	queues map[msgKey][]sendRec
	// phantoms and mismatches are matching violations found during replay.
	phantoms   []Finding
	mismatches []Finding
	// races counts wildcard receives that matched while another sender
	// also had a message in flight to the same receiver.
	races map[raceKey]int
	// colls is each rank's sequence of completed collectives per context.
	colls map[int64]map[int][]string
	// ctxRanks approximates communicator membership: the ranks that
	// produced any event on the context.
	ctxRanks map[int64]map[int]bool
	// created maps group key -> the creation (or recreation) event;
	// freed counts group_free events per key.
	created map[int64]trace.Event
	freed   map[int64]int
	chaos   bool // link-chaos events present (frames may have been dropped)
	// pending is Meta.Pending: the blocking operations still in flight at
	// snapshot, stack order per rank.
	pending []trace.PendingOp
	// reqPosts maps rank -> request id -> the posting event (isend, irecv,
	// or a nonblocking collective); reqDone marks the ids whose wait (or
	// successful test) was recorded.
	reqPosts map[int]map[int64]trace.Event
	reqDone  map[int]map[int64]bool
}

// replayEntry orders the global replay: sends enter the in-flight set at
// their start (the envelope exists from the moment the sender ran), and
// receives consume at their end (when the match completed). Since a
// message's receive always completes after its send began, sorting on
// these stamps — sends first on ties — guarantees every send is enqueued
// before the receive that consumes it.
type replayEntry struct {
	at   float64
	recv bool
	ev   trace.Event
}

func replay(d *trace.Data) *state {
	st := &state{
		nranks:   d.NumRanks(),
		dropped:  d.Meta.Dropped,
		killed:   map[int]bool{},
		revoked:  map[int64]bool{},
		queues:   map[msgKey][]sendRec{},
		races:    map[raceKey]int{},
		colls:    map[int64]map[int][]string{},
		ctxRanks: map[int64]map[int]bool{},
		created:  map[int64]trace.Event{},
		freed:    map[int64]int{},
		pending:  d.Meta.Pending,
		reqPosts: map[int]map[int64]trace.Event{},
		reqDone:  map[int]map[int64]bool{},
	}
	post := func(rank int, e trace.Event) {
		m := st.reqPosts[rank]
		if m == nil {
			m = map[int64]trace.Event{}
			st.reqPosts[rank] = m
		}
		m[e.A2] = e
	}
	done := func(rank int, id int64) {
		m := st.reqDone[rank]
		if m == nil {
			m = map[int64]bool{}
			st.reqDone[rank] = m
		}
		m[id] = true
	}
	var entries []replayEntry
	d.EachEvent(func(rank int, e trace.Event) bool {
		if e.Ctx != 0 {
			m := st.ctxRanks[e.Ctx]
			if m == nil {
				m = map[int]bool{}
				st.ctxRanks[e.Ctx] = m
			}
			m[rank] = true
		}
		switch e.Kind {
		case trace.KindSend:
			entries = append(entries, replayEntry{at: float64(e.Start), ev: e})
		case trace.KindRecv:
			entries = append(entries, replayEntry{at: float64(e.End), recv: true, ev: e})
		case trace.KindKill:
			st.killed[int(e.Rank)] = true
		case trace.KindRevoke:
			st.revoked[e.Ctx] = true
		case trace.KindColl:
			m := st.colls[e.Ctx]
			if m == nil {
				m = map[int][]string{}
				st.colls[e.Ctx] = m
			}
			m[rank] = append(m[rank], e.Name)
			if e.A3 == 1 {
				// A nonblocking collective posting: a request lifecycle
				// starts here (the sequencing entry above still counts —
				// members agree on posting order).
				post(rank, e)
			}
		case trace.KindIsend, trace.KindIrecv:
			post(rank, e)
		case trace.KindWait:
			done(rank, e.A2)
		case trace.KindTest:
			if e.A0 == 1 {
				done(rank, e.A2)
			}
		case trace.KindGroupCreate, trace.KindGroupRecreate:
			st.created[e.Ctx] = e
		case trace.KindGroupFree:
			st.freed[e.Ctx]++
		case trace.KindLinkFault, trace.KindRetransmit:
			st.chaos = true
		}
		return true
	})
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].at != entries[j].at {
			return entries[i].at < entries[j].at
		}
		return !entries[i].recv && entries[j].recv
	})
	for _, en := range entries {
		e := en.ev
		if !en.recv {
			k := msgKey{ctx: e.Ctx, src: int(e.Rank), dst: int(e.Peer), tag: int(e.Tag)}
			st.queues[k] = append(st.queues[k], sendRec{bytes: e.Bytes})
			continue
		}
		k := msgKey{ctx: e.Ctx, src: int(e.Peer), dst: int(e.Rank), tag: int(e.Tag)}
		if e.A1 == 1 {
			// Wildcard match: how many other senders also had a message
			// this receive could have taken? More than one candidate
			// means the match was decided by arrival order — a race on a
			// real network.
			candidates := 0
			for qk, q := range st.queues {
				if len(q) > 0 && qk.ctx == k.ctx && qk.dst == k.dst && qk.tag == k.tag {
					candidates++
				}
			}
			if candidates > 1 {
				st.races[raceKey{ctx: k.ctx, dst: k.dst, tag: k.tag}]++
			}
		}
		q := st.queues[k]
		if len(q) == 0 {
			st.phantoms = append(st.phantoms, Finding{
				Check: "matching", Severity: Violation, Rank: k.dst, Ctx: k.ctx,
				Message: fmt.Sprintf("rank %d received a message from rank %d (ctx %d, tag %d) that no recorded send produced", k.dst, k.src, k.ctx, k.tag),
			})
			continue
		}
		if q[0].bytes != e.Bytes {
			st.mismatches = append(st.mismatches, Finding{
				Check: "matching", Severity: Violation, Rank: k.dst, Ctx: k.ctx,
				Message: fmt.Sprintf("rank %d received %d bytes from rank %d (ctx %d, tag %d) but the matching send carried %d: messages overtook each other on a FIFO channel", k.dst, e.Bytes, k.src, k.ctx, k.tag, q[0].bytes),
			})
		}
		st.queues[k] = q[1:]
	}
	return st
}

// checkMatching reports replay violations plus sends that were never
// received. An unreceived send is excused when its receiver was killed or
// its communicator revoked (the runtime aborts those receives by design),
// and reported as a warning — not a violation — otherwise: a message
// legitimately in flight when the run ended is indistinguishable from a
// lost one in the trace alone.
func (st *state) checkMatching(rep *Report) {
	rep.Findings = append(rep.Findings, st.phantoms...)
	rep.Findings = append(rep.Findings, st.mismatches...)
	type leak struct {
		key msgKey
		n   int
	}
	var leaks []leak
	for k, q := range st.queues {
		if len(q) == 0 || st.killed[k.dst] || st.revoked[k.ctx] {
			continue
		}
		leaks = append(leaks, leak{key: k, n: len(q)})
	}
	sort.Slice(leaks, func(i, j int) bool {
		a, b := leaks[i].key, leaks[j].key
		if a.ctx != b.ctx {
			return a.ctx < b.ctx
		}
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	sev := Warning
	for _, l := range leaks {
		extra := ""
		if st.chaos {
			extra = " (link chaos was active; the frame may have been dropped in transit)"
		}
		rep.add("matching", sev, l.key.dst, l.key.ctx,
			"%d message(s) from rank %d to rank %d (ctx %d, tag %d) were sent but never received%s",
			l.n, l.key.src, l.key.dst, l.key.ctx, l.key.tag, extra)
	}
}

// checkDeadlock runs the wait-for-graph analysis over the operations
// still pending when the trace was snapshotted. Starting from every
// blocked rank, it repeatedly releases ranks whose wait is satisfiable —
// a matching send already in flight, an awaited peer that is not itself
// blocked (it may yet send), a killed peer or revoked context (the
// runtime aborts those waits) — until a fixpoint. Whatever remains is a
// genuine cycle: every rank in it waits on another member of the set.
func (st *state) checkDeadlock(rep *Report) {
	// Innermost pending operation per rank: PendingOps lists each rank's
	// stack bottom-up, so the last entry wins.
	blocked := map[int]trace.PendingOp{}
	for _, op := range st.pending {
		if st.killed[op.Rank] {
			continue // a corpse is dead, not deadlocked
		}
		blocked[op.Rank] = op
	}
	for changed := true; changed; {
		changed = false
		for r, op := range blocked {
			if st.releasable(r, op, blocked) {
				delete(blocked, r)
				changed = true
			}
		}
	}
	if len(blocked) == 0 {
		if n := len(st.pending); n > 0 {
			rep.add("deadlock", Warning, -1, 0,
				"%d blocking operation(s) were still pending at snapshot but all are satisfiable; the run was cut short, not deadlocked", n)
		}
		return
	}
	ranks := make([]int, 0, len(blocked))
	for r := range blocked {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock: %d rank(s) wait on each other with no satisfying message in flight:", len(ranks))
	for _, r := range ranks {
		op := blocked[r]
		peer := fmt.Sprintf("rank %d", op.Peer)
		if op.AnySrc {
			peer = "any source"
		}
		fmt.Fprintf(&b, " rank %d blocked in %s awaiting %s (ctx %d, tag %d) since t=%.6f;", r, op.Kind, peer, op.Ctx, op.Tag, op.Since)
	}
	rep.add("deadlock", Violation, ranks[0], blocked[ranks[0]].Ctx, "%s", strings.TrimSuffix(b.String(), ";"))
}

// releasable reports whether rank r's wait can still complete given the
// set of currently blocked ranks.
func (st *state) releasable(r int, op trace.PendingOp, blocked map[int]trace.PendingOp) bool {
	if st.revoked[op.Ctx] {
		return true // failWatch aborts waits on a revoked communicator
	}
	if op.AnySrc {
		// A wildcard wait completes if any message is headed here, or if
		// any other live rank is still running and could produce one.
		if st.hasInFlight(anySource, r, op) {
			return true
		}
		for s := 0; s < st.nranks; s++ {
			if s == r || st.killed[s] {
				continue
			}
			if _, isBlocked := blocked[s]; !isBlocked {
				return true
			}
		}
		return false
	}
	if st.killed[op.Peer] {
		return true // failWatch turns the wait into an error
	}
	if _, isBlocked := blocked[op.Peer]; !isBlocked {
		return true // the peer is still running; it may yet send
	}
	return st.hasInFlight(op.Peer, r, op)
}

// hasInFlight reports whether an unreceived send matching the pending
// wait exists. src == anySource accepts any sender.
func (st *state) hasInFlight(src, dst int, op trace.PendingOp) bool {
	for k, q := range st.queues {
		if len(q) == 0 || k.ctx != op.Ctx || k.dst != dst {
			continue
		}
		if src != anySource && k.src != src {
			continue
		}
		if op.Tag != anyTag && k.tag != op.Tag {
			continue
		}
		return true
	}
	return false
}

// checkCollSeq verifies that the members of each communicator executed
// the same collectives in the same order. A rank may stop early — run a
// strict prefix — only when the trace explains it: the rank was killed,
// the context was revoked, or a member of the communicator died (peers
// abort their collectives when a member fails, without completing them).
// A same-position mismatch is never excused: two ranks that entered
// different collectives at the same step have diverged.
func (st *state) checkCollSeq(rep *Report) {
	ctxs := make([]int64, 0, len(st.colls))
	for ctx := range st.colls {
		ctxs = append(ctxs, ctx)
	}
	sort.Slice(ctxs, func(i, j int) bool { return ctxs[i] < ctxs[j] })
	for _, ctx := range ctxs {
		byRank := st.colls[ctx]
		ranks := make([]int, 0, len(byRank))
		for r := range byRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		// Reference: the longest sequence (lowest rank on ties).
		ref := ranks[0]
		for _, r := range ranks[1:] {
			if len(byRank[r]) > len(byRank[ref]) {
				ref = r
			}
		}
		refSeq := byRank[ref]
		memberDied := false
		for r := range st.ctxRanks[ctx] {
			if st.killed[r] {
				memberDied = true
				break
			}
		}
		for _, r := range ranks {
			seq := byRank[r]
			diverged := false
			for i := 0; i < len(seq) && i < len(refSeq); i++ {
				if seq[i] != refSeq[i] {
					rep.add("collseq", Violation, r, ctx,
						"collective sequence diverged on ctx %d: rank %d ran %q as collective #%d where rank %d ran %q",
						ctx, r, seq[i], i+1, ref, refSeq[i])
					diverged = true
					break
				}
			}
			if diverged || len(seq) >= len(refSeq) {
				continue
			}
			if st.killed[r] || st.revoked[ctx] || memberDied {
				continue // an interrupted prefix, explained by the trace
			}
			rep.add("collseq", Violation, r, ctx,
				"rank %d completed only %d of %d collectives on ctx %d with no failure or revocation to explain the shortfall",
				r, len(seq), len(refSeq), ctx)
		}
	}
}

// checkGroups verifies group lifecycle accounting: every group creation
// (or recreation) must be balanced by at least one dissolution record.
// The members each record their own group_free, so a healthy trace has
// several frees per key; zero means the group leaked.
func (st *state) checkGroups(rep *Report, sound bool) {
	sev := Violation
	if !sound {
		sev = Warning // creation events may have been overwritten
	}
	keys := make([]int64, 0, len(st.created))
	for k := range st.created {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if st.freed[k] > 0 {
			continue
		}
		e := st.created[k]
		rep.add("groups", sev, int(e.Rank), k,
			"group key %d (%s by rank %d, %d members) was never freed", k, e.Kind, e.Rank, e.Bytes)
	}
}

// checkRaces reports wildcard receives whose match was decided by
// arrival order. Legal — AnySource asks for exactly this — but each site
// is a seam where a real network could deliver a different execution, so
// the report surfaces them for review.
func (st *state) checkRaces(rep *Report) {
	keys := make([]raceKey, 0, len(st.races))
	for k := range st.races {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.ctx != b.ctx {
			return a.ctx < b.ctx
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	for _, k := range keys {
		rep.add("races", Info, k.dst, k.ctx,
			"%d AnySource receive(s) on rank %d (ctx %d, tag %d) matched while another sender also had a message in flight: the result depends on arrival order",
			st.races[k], k.dst, k.ctx, k.tag)
	}
}

// checkRequests verifies nonblocking-request lifecycles: every posted
// request (isend, irecv, or a nonblocking collective) must reach a wait
// or a successful test on the posting rank. The check only fires on
// clean runs — a killed rank or a revoked communicator legitimately
// abandons its pending requests, and the runtime aborts their waits by
// design, so traces with failures are exempt.
func (st *state) checkRequests(rep *Report) {
	if len(st.killed) > 0 || len(st.revoked) > 0 {
		return
	}
	ranks := make([]int, 0, len(st.reqPosts))
	for r := range st.reqPosts {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		posts := st.reqPosts[r]
		ids := make([]int64, 0, len(posts))
		for id := range posts {
			if !st.reqDone[r][id] {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			e := posts[id]
			what := e.Kind.String()
			if e.Kind == trace.KindColl {
				what = e.Name
			}
			rep.add("requests", Violation, r, e.Ctx,
				"rank %d posted request %d (%s, ctx %d, tag %d) that never completed: no wait or successful test recorded",
				r, id, what, e.Ctx, e.Tag)
		}
	}
}
