package verify

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// mkData assembles a synthetic snapshot from a flat event list, routing
// each event to its rank's shard in list order.
func mkData(nranks int, events ...trace.Event) *trace.Data {
	d := &trace.Data{Meta: trace.Meta{NRanks: nranks}, PerRank: make([][]trace.Event, nranks)}
	for _, e := range events {
		d.PerRank[e.Rank] = append(d.PerRank[e.Rank], e)
	}
	return d
}

func send(rank, peer, tag int, ctx, bytes int64, at float64) trace.Event {
	return trace.Event{
		Rank: int32(rank), Kind: trace.KindSend, Peer: int32(peer), Tag: int32(tag),
		Ctx: ctx, Bytes: bytes, Start: vclock.Time(at), End: vclock.Time(at + 0.001),
	}
}

func recv(rank, peer, tag int, ctx, bytes int64, at float64) trace.Event {
	return trace.Event{
		Rank: int32(rank), Kind: trace.KindRecv, Peer: int32(peer), Tag: int32(tag),
		Ctx: ctx, Bytes: bytes, Start: vclock.Time(at - 0.001), End: vclock.Time(at),
	}
}

func coll(rank int, ctx int64, name string, at float64) trace.Event {
	return trace.Event{
		Rank: int32(rank), Kind: trace.KindColl, Peer: -1, Ctx: ctx, Name: name,
		Start: vclock.Time(at), End: vclock.Time(at + 0.001),
	}
}

func kill(rank int, at float64) trace.Event {
	return trace.Event{Rank: int32(rank), Kind: trace.KindKill, Peer: -1, Start: vclock.Time(at), End: vclock.Time(at)}
}

// findings filters a report by check name.
func findings(rep *Report, check string) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func mustRun(t *testing.T, d *trace.Data, checks ...string) *Report {
	t.Helper()
	rep, err := Run(d, checks...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCleanExchange(t *testing.T) {
	d := mkData(2,
		send(0, 1, 9, 1, 64, 1.0),
		recv(1, 0, 9, 1, 64, 1.5),
	)
	rep := mustRun(t, d)
	if len(rep.Findings) != 0 {
		t.Fatalf("clean exchange produced findings: %v", rep.Findings)
	}
	if len(rep.Ran) != len(AllChecks) {
		t.Fatalf("Ran = %v, want all of %v", rep.Ran, AllChecks)
	}
}

func TestPhantomReceive(t *testing.T) {
	d := mkData(2, recv(1, 0, 9, 1, 64, 1.5))
	rep := mustRun(t, d)
	v := rep.Violations()
	if len(v) != 1 || !strings.Contains(v[0].Message, "no recorded send") {
		t.Fatalf("violations = %v, want one phantom-receive", v)
	}
}

func TestFIFOSizeMismatch(t *testing.T) {
	// Two messages on one channel received in swapped order: the byte
	// counts cross.
	d := mkData(2,
		send(0, 1, 9, 1, 10, 1.0),
		send(0, 1, 9, 1, 20, 1.1),
		recv(1, 0, 9, 1, 20, 2.0),
		recv(1, 0, 9, 1, 10, 2.1),
	)
	rep := mustRun(t, d)
	v := rep.Violations()
	if len(v) == 0 || !strings.Contains(v[0].Message, "overtook") {
		t.Fatalf("violations = %v, want FIFO overtaking", v)
	}
}

func TestUnreceivedSend(t *testing.T) {
	d := mkData(2, send(0, 1, 9, 1, 64, 1.0))
	rep := mustRun(t, d)
	fs := findings(rep, "matching")
	if len(fs) != 1 || fs[0].Severity != Warning || !strings.Contains(fs[0].Message, "never received") {
		t.Fatalf("findings = %v, want one never-received warning", fs)
	}

	// The same trace with the receiver killed: the loss is explained.
	d = mkData(2, send(0, 1, 9, 1, 64, 1.0), kill(1, 2.0))
	rep = mustRun(t, d)
	if fs := findings(rep, "matching"); len(fs) != 0 {
		t.Fatalf("killed receiver still flagged: %v", fs)
	}
}

func TestDeadlockCycle(t *testing.T) {
	d := mkData(2)
	d.Meta.Pending = []trace.PendingOp{
		{Rank: 0, Kind: "recv", Peer: 1, Tag: 5, Ctx: 1, Since: 3.0},
		{Rank: 1, Kind: "recv", Peer: 0, Tag: 5, Ctx: 1, Since: 3.0},
	}
	rep := mustRun(t, d)
	v := rep.Violations()
	if len(v) != 1 || v[0].Check != "deadlock" {
		t.Fatalf("violations = %v, want one deadlock", v)
	}
	if !strings.Contains(v[0].Message, "rank 0") || !strings.Contains(v[0].Message, "rank 1") {
		t.Fatalf("deadlock message does not name both ranks: %s", v[0].Message)
	}
}

func TestDeadlockSatisfiedByInFlightSend(t *testing.T) {
	// Rank 1 blocks on a receive from 0, but 0's message is already in
	// flight; rank 0 blocks on 1, which will send after consuming. Not a
	// deadlock — the snapshot just caught the run mid-step.
	d := mkData(2, send(0, 1, 5, 1, 8, 1.0))
	d.Meta.Pending = []trace.PendingOp{
		{Rank: 0, Kind: "recv", Peer: 1, Tag: 5, Ctx: 1, Since: 1.1},
		{Rank: 1, Kind: "recv", Peer: 0, Tag: 5, Ctx: 1, Since: 1.1},
	}
	rep := mustRun(t, d)
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("satisfiable wait reported as deadlock: %v", v)
	}
	fs := findings(rep, "deadlock")
	if len(fs) != 1 || fs[0].Severity != Warning {
		t.Fatalf("findings = %v, want one cut-short warning", fs)
	}
}

func TestDeadlockPeerStillRunning(t *testing.T) {
	d := mkData(2)
	d.Meta.Pending = []trace.PendingOp{{Rank: 0, Kind: "recv", Peer: 1, Tag: 5, Ctx: 1, Since: 1.0}}
	rep := mustRun(t, d)
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("wait on a running peer reported as deadlock: %v", v)
	}
}

func TestDeadlockKilledPeerReleases(t *testing.T) {
	// Both ranks block on each other, but one of them is dead: the
	// runtime aborts the survivor's wait, so no deadlock.
	d := mkData(2, kill(1, 2.0))
	d.Meta.Pending = []trace.PendingOp{
		{Rank: 0, Kind: "recv", Peer: 1, Tag: 5, Ctx: 1, Since: 3.0},
		{Rank: 1, Kind: "recv", Peer: 0, Tag: 5, Ctx: 1, Since: 3.0},
	}
	rep := mustRun(t, d)
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("kill-broken cycle reported as deadlock: %v", v)
	}
}

func TestDeadlockAnySourceReleasedByLiveRank(t *testing.T) {
	// Rank 0 waits on any source; rank 2 is neither blocked nor dead, so
	// the wildcard can still be satisfied.
	d := mkData(3)
	d.Meta.Pending = []trace.PendingOp{
		{Rank: 0, Kind: "recv", Peer: -1, Tag: 5, Ctx: 1, AnySrc: true, Since: 1.0},
		{Rank: 1, Kind: "recv", Peer: 0, Tag: 6, Ctx: 1, Since: 1.0},
	}
	rep := mustRun(t, d)
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("satisfiable wildcard wait reported as deadlock: %v", v)
	}
}

func TestCollSeqDivergence(t *testing.T) {
	d := mkData(2,
		coll(0, 7, "bcast/binomial", 1.0),
		coll(0, 7, "gather/flat", 2.0),
		coll(1, 7, "gather/flat", 1.0),
		coll(1, 7, "bcast/binomial", 2.0),
	)
	rep := mustRun(t, d)
	v := rep.Violations()
	if len(v) == 0 || v[0].Check != "collseq" || !strings.Contains(v[0].Message, "diverged") {
		t.Fatalf("violations = %v, want collseq divergence", v)
	}
}

func TestCollSeqPrefix(t *testing.T) {
	// Rank 1 stopped after the first collective with nothing to explain
	// it: violation.
	d := mkData(2,
		coll(0, 7, "bcast/binomial", 1.0),
		coll(0, 7, "gather/flat", 2.0),
		coll(1, 7, "bcast/binomial", 1.0),
	)
	rep := mustRun(t, d)
	v := rep.Violations()
	if len(v) != 1 || !strings.Contains(v[0].Message, "completed only 1 of 2") {
		t.Fatalf("violations = %v, want unexplained prefix", v)
	}

	// The same shortfall with the rank killed is an interrupted run.
	d = mkData(2,
		coll(0, 7, "bcast/binomial", 1.0),
		coll(0, 7, "gather/flat", 2.0),
		coll(1, 7, "bcast/binomial", 1.0),
		kill(1, 1.5),
	)
	rep = mustRun(t, d)
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("killed rank's prefix flagged: %v", v)
	}
}

func TestGroupLeak(t *testing.T) {
	create := trace.Event{Rank: 0, Kind: trace.KindGroupCreate, Peer: -1, Ctx: 42, Bytes: 3}
	free := trace.Event{Rank: 0, Kind: trace.KindGroupFree, Peer: -1, Ctx: 42}

	rep := mustRun(t, mkData(1, create))
	v := rep.Violations()
	if len(v) != 1 || v[0].Check != "groups" || !strings.Contains(v[0].Message, "never freed") {
		t.Fatalf("violations = %v, want group leak", v)
	}

	rep = mustRun(t, mkData(1, create, free))
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("freed group flagged: %v", v)
	}

	// ULFM recreate path: the old key is dissolved, a new key created
	// and freed. No leak on either.
	recreate := trace.Event{Rank: 0, Kind: trace.KindGroupRecreate, Peer: -1, Ctx: 43, Bytes: 2}
	free43 := trace.Event{Rank: 0, Kind: trace.KindGroupFree, Peer: -1, Ctx: 43}
	rep = mustRun(t, mkData(1, create, free, recreate, free43))
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("recreate lifecycle flagged: %v", v)
	}
}

func TestAnySourceRace(t *testing.T) {
	// Two senders have messages in flight when the wildcard receive
	// matches: arrival order decided the winner.
	d := mkData(3,
		send(0, 1, 9, 1, 8, 1.0),
		send(2, 1, 9, 1, 8, 1.1),
		trace.Event{
			Rank: 1, Kind: trace.KindRecv, Peer: 0, Tag: 9, Ctx: 1, Bytes: 8,
			Start: vclock.Time(1.2), End: vclock.Time(1.5), A1: 1,
		},
		recv(1, 2, 9, 1, 8, 2.0),
	)
	rep := mustRun(t, d)
	fs := findings(rep, "races")
	if len(fs) != 1 || fs[0].Severity != Info || !strings.Contains(fs[0].Message, "arrival order") {
		t.Fatalf("findings = %v, want one race info", fs)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("legal race reported as violation: %v", v)
	}
}

func TestDroppedEventsDowngrade(t *testing.T) {
	// With ring overwrites the message-level checks are unsound: the
	// phantom receive is NOT reported, the group leak degrades to a
	// warning, and the drop itself is surfaced.
	d := mkData(2,
		recv(1, 0, 9, 1, 64, 1.5),
		trace.Event{Rank: 0, Kind: trace.KindGroupCreate, Peer: -1, Ctx: 42, Bytes: 3},
	)
	d.Meta.Dropped = 7
	rep := mustRun(t, d)
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("unsound trace produced violations: %v", v)
	}
	var sawDrop, sawLeak bool
	for _, f := range rep.Findings {
		sawDrop = sawDrop || strings.Contains(f.Message, "dropped")
		sawLeak = sawLeak || (f.Check == "groups" && f.Severity == Warning)
	}
	if !sawDrop || !sawLeak {
		t.Fatalf("findings = %v, want drop warning and downgraded leak", rep.Findings)
	}
}

func TestCheckSelection(t *testing.T) {
	// A trace violating both matching and groups, verified with only the
	// groups check: matching findings must not appear.
	d := mkData(2,
		recv(1, 0, 9, 1, 64, 1.5),
		trace.Event{Rank: 0, Kind: trace.KindGroupCreate, Peer: -1, Ctx: 42, Bytes: 3},
	)
	rep := mustRun(t, d, "groups")
	if fs := findings(rep, "matching"); len(fs) != 0 {
		t.Fatalf("unselected check reported: %v", fs)
	}
	if fs := findings(rep, "groups"); len(fs) != 1 {
		t.Fatalf("selected check missing: %v", rep.Findings)
	}

	if _, err := Run(d, "nosuch"); err == nil {
		t.Fatal("unknown check name must be rejected")
	}
}

// --- Request lifecycles. ---

func irecvPost(rank, peer, tag int, ctx, id int64, at float64) trace.Event {
	return trace.Event{
		Rank: int32(rank), Kind: trace.KindIrecv, Peer: int32(peer), Tag: int32(tag),
		Ctx: ctx, A2: id, Start: vclock.Time(at), End: vclock.Time(at),
	}
}

func isendPost(rank, peer, tag int, ctx, id int64, at float64) trace.Event {
	return trace.Event{
		Rank: int32(rank), Kind: trace.KindIsend, Peer: int32(peer), Tag: int32(tag),
		Ctx: ctx, A2: id, Start: vclock.Time(at), End: vclock.Time(at),
	}
}

func wait(rank int, id int64, at float64) trace.Event {
	return trace.Event{Rank: int32(rank), Kind: trace.KindWait, Peer: -1, A2: id,
		Start: vclock.Time(at), End: vclock.Time(at + 0.001)}
}

func test(rank int, id int64, ok int64, at float64) trace.Event {
	return trace.Event{Rank: int32(rank), Kind: trace.KindTest, Peer: -1, A0: ok, A2: id,
		Start: vclock.Time(at), End: vclock.Time(at)}
}

func TestRequestLifecyclesClean(t *testing.T) {
	// A full nonblocking exchange: every posted request waits or tests.
	d := mkData(2,
		isendPost(0, 1, 9, 1, 1, 1.0),
		send(0, 1, 9, 1, 64, 1.0),
		irecvPost(1, 0, 9, 1, 1, 1.1),
		recv(1, 0, 9, 1, 64, 1.5),
		wait(1, 1, 1.5),
		test(0, 1, 1, 2.0),
	)
	rep := mustRun(t, d, "requests")
	if len(rep.Findings) != 0 {
		t.Fatalf("clean request lifecycles produced findings: %v", rep.Findings)
	}
}

func TestLeakedRequest(t *testing.T) {
	// Rank 1 posts a receive it never waits for; rank 0's send request
	// completes. Exactly the irecv must be flagged.
	d := mkData(2,
		isendPost(0, 1, 9, 1, 1, 1.0),
		send(0, 1, 9, 1, 64, 1.0),
		irecvPost(1, 0, 9, 1, 1, 1.1),
		recv(1, 0, 9, 1, 64, 1.5),
		wait(0, 1, 2.0),
	)
	rep := mustRun(t, d, "requests")
	v := rep.Violations()
	if len(v) != 1 || v[0].Rank != 1 || !strings.Contains(v[0].Message, "never completed") {
		t.Fatalf("violations = %v, want one leaked irecv on rank 1", v)
	}
}

func TestLeakedRequestFailedTestDoesNotComplete(t *testing.T) {
	// A test that returned false is not a completion.
	d := mkData(1, isendPost(0, 0, 9, 1, 1, 1.0), test(0, 1, 0, 2.0))
	rep := mustRun(t, d, "requests")
	if v := rep.Violations(); len(v) != 1 {
		t.Fatalf("violations = %v, want the failed-test request flagged", v)
	}
}

func TestLeakedNonblockingCollective(t *testing.T) {
	post := coll(0, 1, "ibcast", 1.0)
	post.A2, post.A3 = 1, 1
	d := mkData(1, post)
	rep := mustRun(t, d, "requests")
	v := rep.Violations()
	if len(v) != 1 || !strings.Contains(v[0].Message, "ibcast") {
		t.Fatalf("violations = %v, want the pending ibcast flagged", v)
	}
}

func TestLeakedRequestExcusedByKill(t *testing.T) {
	// A run with a killed rank legitimately abandons pending requests.
	d := mkData(2,
		irecvPost(1, 0, 9, 1, 1, 1.1),
		kill(0, 1.2),
	)
	rep := mustRun(t, d, "requests")
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("violations = %v, want none under a kill", v)
	}
}
